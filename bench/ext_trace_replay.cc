/**
 * @file
 * Extension bench: replay a captured binary access trace across the
 * four Table-1 device models. This is the real-trace frontend — the
 * workload comes from a file (converted from the text format or a
 * drcachesim listing by tools/rcnvm_trace_convert) instead of a
 * generator, so the same memory-reference stream can be replayed on
 * DRAM, RRAM, RC-NVM, and GS-DRAM and compared with the standard
 * stats pipeline.
 *
 * By default each device streams the trace through the mmap'd
 * reader and per-core demux (bounded memory regardless of trace
 * size). `--fixed-plan` materialises the trace as per-core plans and
 * replays through Machine::run instead — the two paths are
 * golden-tested to produce byte-identical statistics, and CI diffs
 * their stats JSON. `--smoke` restricts to RC-NVM + DRAM for CI.
 * RCNVM_THREADS selects the sharded engine as usual.
 *
 * A trace may use operations a device cannot execute (column ops on
 * DRAM, gathered loads anywhere but GS-DRAM). Following the paper's
 * methodology — row-only baselines run the same logical workload
 * through row accesses — such operations are degraded to their
 * row-oriented equivalents, identically on both replay paths.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "core/presets.hh"
#include "trace/trace_binary.hh"
#include "trace/trace_demux.hh"
#include "trace/trace_reader.hh"

using namespace rcnvm;

namespace {

/** Degrade @p op to what @p caps can execute (identity when the
 *  device supports it natively). */
cpu::MemOp
adaptOp(cpu::MemOp op, const mem::DeviceCaps &caps)
{
    if (!caps.columnAccess) {
        if (op.kind == cpu::OpKind::CLoad)
            op.kind = cpu::OpKind::Load;
        else if (op.kind == cpu::OpKind::CStore)
            op.kind = cpu::OpKind::Store;
        op.pinOrient = Orientation::Row;
    }
    if (!caps.gather && op.kind == cpu::OpKind::GLoad)
        op.kind = cpu::OpKind::Load;
    return op;
}

/** Pull-through OpSource applying adaptOp to a wrapped stream. */
class AdaptSource final : public cpu::OpSource
{
  public:
    void
    bind(cpu::OpSource &inner, const mem::DeviceCaps &caps)
    {
        inner_ = &inner;
        caps_ = &caps;
    }

    const cpu::MemOp *
    peek() override
    {
        const cpu::MemOp *head = inner_->peek();
        if (head == nullptr)
            return nullptr;
        cached_ = adaptOp(*head, *caps_);
        return &cached_;
    }

    void advance() override { inner_->advance(); }

  private:
    cpu::OpSource *inner_ = nullptr;
    const mem::DeviceCaps *caps_ = nullptr;
    cpu::MemOp cached_;
};

} // namespace

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "ext_trace_replay",
            "Extension bench: replay a binary access trace (see\n"
            "tools/rcnvm_trace_convert) across the Table-1 device "
            "models with\nthe standard stats pipeline.",
            {"--smoke       RC-NVM + DRAM only (CI)",
             "--fixed-plan  materialise the trace and replay "
             "through the\n               fixed-plan path instead "
             "of streaming",
             "<trace.rtb>   binary trace file (required)"}))
        return 0;

    bool smoke = false;
    bool fixedPlan = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--fixed-plan") == 0)
            fixedPlan = true;
        else if (argv[i][0] == '-')
            rcnvm_fatal("unknown option ", argv[i],
                        " (see --help)");
        else if (!path.empty())
            rcnvm_fatal("more than one trace file given");
        else
            path = argv[i];
    }
    if (path.empty())
        rcnvm_fatal("no trace file given; convert one with "
                    "rcnvm_trace_convert and pass <trace.rtb>");

    util::setLogLevel(util::LogLevel::Quiet);

    const std::vector<mem::DeviceKind> devices =
        smoke ? std::vector<mem::DeviceKind>{mem::DeviceKind::RcNvm,
                                             mem::DeviceKind::Dram}
              : std::vector<mem::DeviceKind>{
                    mem::DeviceKind::Dram, mem::DeviceKind::Rram,
                    mem::DeviceKind::RcNvm,
                    mem::DeviceKind::GsDram};

    core::ArtifactWriter artifacts("ext_trace_replay");

    util::TablePrinter t(
        std::string("Extension: trace replay of ") + path + " (" +
        (fixedPlan ? "fixed-plan" : "streaming") + " path)");
    t.addRow({"device", "records", "time (us)", "Mcycles",
              "LLC misses", "bufMiss%"});

    for (const mem::DeviceKind kind : devices) {
        cpu::MachineConfig config = core::table1Machine(kind);
        cpu::Machine machine(config);

        // One fresh reader per device: replay consumes the stream.
        trace::MmapTraceReader reader(path);
        if (reader.header().coreCount > machine.coreCount())
            rcnvm_fatal("trace has ", reader.header().coreCount,
                        " core stream(s) but the machine has ",
                        machine.coreCount(),
                        " core(s); re-convert with fewer cores");

        const mem::DeviceCaps caps = mem::capsFor(kind);
        cpu::RunResult run;
        if (fixedPlan) {
            auto plans = trace::readBinaryTrace(path);
            for (auto &plan : plans) {
                for (cpu::MemOp &op : plan)
                    op = adaptOp(op, caps);
            }
            run = machine.run(plans);
        } else {
            trace::TraceDemux demux(reader);
            std::vector<AdaptSource> adapted(demux.coreCount());
            std::vector<cpu::OpSource *> sources;
            for (unsigned c = 0; c < demux.coreCount(); ++c) {
                adapted[c].bind(demux.source(c), caps);
                sources.push_back(&adapted[c]);
            }
            run = machine.runSources(sources);
        }

        if (artifacts.enabled())
            artifacts.record(mem::toString(kind), run.stats,
                             run.ticks);

        const double records =
            static_cast<double>(reader.header().recordCount);
        t.addRow({mem::toString(kind), bench::num(records, 0),
                  bench::num(static_cast<double>(run.ticks.value()) /
                                 1.0e6,
                             2),
                  bench::num(run.cycles() / 1.0e6, 2),
                  bench::num(run.stats.get("cache.llcMisses"), 0),
                  bench::num(
                      100.0 * run.stats.get("mem.bufferMissRate"),
                      1)});
    }
    t.print(std::cout);
    return 0;
}
