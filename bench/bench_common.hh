/**
 * @file
 * Shared scaffolding for the figure/table reproduction benches:
 * standard workload construction, device lists, and run helpers.
 *
 * Every bench prints the same rows/series the paper reports; the
 * scale (tuples per table) can be overridden with the RCNVM_TUPLES
 * environment variable.
 */

#ifndef RCNVM_BENCH_BENCH_COMMON_HH_
#define RCNVM_BENCH_BENCH_COMMON_HH_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table_printer.hh"

namespace rcnvm::bench {

/**
 * Standard `--help` handling for the bench binaries.
 *
 * Scans argv for `--help`/`-h`; when present prints a usage block —
 * the one-line description, any bench-specific option lines, and the
 * environment knobs every bench honours — and returns true so main
 * can exit 0 without running the sweep.
 */
inline bool
handleUsage(int argc, char **argv, const std::string &name,
            const std::string &description,
            const std::vector<std::string> &options = {})
{
    bool wanted = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--help" ||
            std::string(argv[i]) == "-h")
            wanted = true;
    }
    if (!wanted)
        return false;

    std::cout << "usage: " << name << " [--help]";
    for (const std::string &opt : options)
        std::cout << " [" << opt.substr(0, opt.find(' ')) << "]";
    std::cout << "\n\n" << description << "\n";
    if (!options.empty()) {
        std::cout << "\noptions:\n";
        for (const std::string &opt : options)
            std::cout << "  " << opt << "\n";
    }
    std::cout <<
        "\nenvironment:\n"
        "  RCNVM_SEED          experiment seed (tables and request\n"
        "                      generators); same seed => identical\n"
        "                      statistics\n"
        "  RCNVM_TUPLES        tuples per benchmark table\n"
        "  RCNVM_THREADS       channel worker threads (default 1);\n"
        "                      any value reproduces the same stats\n"
        "  RCNVM_STATS_DIR     write per-run stats CSV artifacts\n"
        "                      into this directory\n"
        "  RCNVM_EPOCH_TICKS   sample gauges every N ticks into an\n"
        "                      epoch series (exported with stats)\n"
        "  RCNVM_CHROME_TRACE  write a chrome://tracing JSON to this\n"
        "                      path (forces single-threaded)\n";
    return true;
}

/** Tuples per benchmark table (override: RCNVM_TUPLES; malformed
 *  values are a fatal configuration error, not a silent 0). */
inline std::uint64_t
benchTuples(std::uint64_t fallback = 131072)
{
    return util::envUint64("RCNVM_TUPLES", fallback);
}

/** The four devices in the order the paper plots them. */
inline const std::vector<mem::DeviceKind> &
allDevices()
{
    static const std::vector<mem::DeviceKind> devices = {
        mem::DeviceKind::RcNvm,
        mem::DeviceKind::Rram,
        mem::DeviceKind::GsDram,
        mem::DeviceKind::Dram,
    };
    return devices;
}

/** The timed execution-time query set of Figures 18-21: the first
 *  workload::kTimedQueryCount entries of Table 2 (Q1-Q13). */
inline const std::vector<workload::QueryId> &
sqlQueries()
{
    static const std::vector<workload::QueryId> ids = [] {
        std::vector<workload::QueryId> v;
        v.reserve(workload::kTimedQueryCount);
        for (unsigned i = 0; i < workload::kTimedQueryCount; ++i)
            v.push_back(workload::allQueries()[i].id);
        return v;
    }();
    return ids;
}

/** "Q1-Q13"-style label of the timed suite, derived from the same
 *  constant the suite itself is built from. */
inline std::string
sqlSuiteLabel()
{
    return "Q1-Q" + std::to_string(workload::kTimedQueryCount);
}

/** Results of one query on every device. */
struct QueryRow {
    workload::QueryId id;
    std::vector<core::ExperimentResult> byDevice; // allDevices order
};

/**
 * Run the whole Q1-Q13 suite on all four devices and return the
 * grid of results (the shared input of Figures 18, 19, 20, 21).
 */
inline std::vector<QueryRow>
runSqlSuite(std::uint64_t tuples)
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(tuples);
    const workload::QueryWorkload workload(tables);

    std::vector<QueryRow> rows;
    for (const auto id : sqlQueries()) {
        QueryRow row;
        row.id = id;
        for (const auto kind : allDevices()) {
            row.byDevice.push_back(
                core::runQuery(kind, workload, id));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Shorthand for TablePrinter::num. */
inline std::string
num(double v, int precision = 2)
{
    return util::TablePrinter::num(v, precision);
}

} // namespace rcnvm::bench

#endif // RCNVM_BENCH_BENCH_COMMON_HH_
