/**
 * @file
 * Figure 20 reproduction: combined row-/column-buffer miss rate per
 * query on the four devices.
 *
 * Paper anchor: RC-NVM achieves a ~38% decline in total buffer miss
 * rate versus the baselines.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main()
{
    const auto rows = bench::runSqlSuite(bench::benchTuples());

    // The paper's Figure-20 axis extends past 100%, indicating the
    // per-query totals are normalised (we use DRAM = 100%); the raw
    // per-request rates are printed alongside.
    const auto misses = [](const core::ExperimentResult &r) {
        return r.stats.at("mem.bufferMisses") +
               r.stats.at("mem.bufferConflicts") +
               r.stats.at("mem.orientationSwitches");
    };

    util::TablePrinter t(
        "Figure 20: row-/column-buffer misses "
        "(normalised to DRAM; raw per-request rate in brackets)");
    t.addRow({"query", "RC-NVM", "RRAM", "GS-DRAM", "DRAM"});
    double rc_sum = 0, dram_sum = 0;
    for (const auto &row : rows) {
        const double dram_misses =
            std::max(1.0, misses(row.byDevice[3]));
        rc_sum += misses(row.byDevice[0]);
        dram_sum += dram_misses;
        std::vector<std::string> cells = {
            workload::querySpec(row.id).name};
        for (const auto &r : row.byDevice) {
            cells.push_back(
                bench::num(100.0 * misses(r) / dram_misses, 0) +
                "% (" +
                bench::num(100.0 * r.bufferMissRate(), 1) + "%)");
        }
        t.addRow(cells);
    }
    t.print(std::cout);

    std::cout << "\ntotal buffer misses: RC-NVM at "
              << bench::num(100.0 * rc_sum / dram_sum, 1)
              << "% of DRAM, a "
              << bench::num(100.0 * (1.0 - rc_sum / dram_sum), 1)
              << "% decline (paper anchor: ~38% decline).\n";
    return 0;
}
