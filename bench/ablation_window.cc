/**
 * @file
 * Ablation: memory-level parallelism (outstanding accesses per
 * core). The paper's gem5 cores expose little MLP; this sweep shows
 * how the headline RC-NVM advantage depends on it, documenting the
 * calibration choice (window = 4) used by the Table-1 preset.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples(65536));
    const workload::QueryWorkload wl(tables);

    util::TablePrinter t(
        "Ablation: per-core outstanding-access window (Q6)");
    t.addRow({"window", "RC-NVM (Mcyc)", "DRAM (Mcyc)",
              "RC-NVM speedup"});
    for (const unsigned window : {1u, 2u, 4u, 8u, 16u}) {
        double mcyc[2];
        int i = 0;
        for (const auto kind :
             {mem::DeviceKind::RcNvm, mem::DeviceKind::Dram}) {
            cpu::MachineConfig config = core::table1Machine(kind);
            config.window = window;
            mem::AddressMap map(mem::geometryFor(kind));
            const auto pd = wl.place(kind, map);
            const auto q = wl.compile(workload::QueryId::Q6, pd,
                                      config.hierarchy.cores);
            mcyc[i++] = core::runCompiled(config, q).megacycles();
        }
        t.addRow({std::to_string(window), bench::num(mcyc[0]),
                  bench::num(mcyc[1]),
                  bench::num(mcyc[1] / mcyc[0], 2) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nlow-MLP cores (the paper's regime) are "
                 "latency-bound and favour RC-NVM most; deep "
                 "windows push both devices toward the bus "
                 "bandwidth bound.\n";
    return 0;
}
