/**
 * @file
 * Table 2 reproduction: the benchmark query set, with the per-query
 * plan sizes the compiler produces on RC-NVM.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const std::uint64_t tuples = bench::benchTuples(16384);
    const workload::TableSet tables =
        workload::TableSet::standard(tuples);
    const workload::QueryWorkload wl(tables);
    mem::AddressMap map(mem::geometryFor(mem::DeviceKind::RcNvm));
    const workload::PlacedDatabase pd =
        wl.place(mem::DeviceKind::RcNvm, map);

    util::TablePrinter t("Table 2: benchmark queries");
    t.addRow({"#", "category", "SQL statement", "phases",
              "ops (RC-NVM)"});
    for (const workload::QuerySpec &spec : workload::allQueries()) {
        const auto q = wl.compile(spec.id, pd);
        t.addRow({spec.name, spec.category, spec.sql,
                  std::to_string(q.phases.size()),
                  std::to_string(q.totalOps())});
    }
    t.print(std::cout);
    std::cout << "\n(tables with " << tuples << " tuples; "
              << "Q14/Q15 compiled at the default group-caching "
                 "size)\n";
    return 0;
}
