/**
 * @file
 * Figure 5 reproduction: RC-NVM read-latency overhead versus the
 * word/bit line count of one array.
 *
 * Paper anchor: about 15% at 512 lines, moderate throughout.
 */

#include <iostream>

#include "bench_common.hh"
#include "circuit/latency_model.hh"

using namespace rcnvm;

int
main()
{
    circuit::LatencyModel model;

    util::TablePrinter t(
        "Figure 5: RC-NVM latency overhead vs WL & BL numbers");
    t.addRow({"WL&BL", "baseline read (ns)", "RC-NVM read (ns)",
              "overhead"});
    for (unsigned n = 64; n <= 1200; n += 64) {
        t.addRow({std::to_string(n),
                  bench::num(model.baselineReadNs(n), 1),
                  bench::num(model.rcNvmReadNs(n), 1),
                  bench::num(100.0 * model.rcNvmOverhead(n), 1) +
                      "%"});
    }
    t.print(std::cout);

    std::cout << "\npaper anchor: ~15% at 512x512 arrays; Table-1 "
                 "read times 25 ns (RRAM) and 29 ns (RC-NVM).\n";
    return 0;
}
