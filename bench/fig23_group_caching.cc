/**
 * @file
 * Figure 23 reproduction: the impact of the group-caching
 * optimisation on Q14 (wide-field aggregate) and Q15 (ordered
 * multi-field select), sweeping the number of cache lines filled
 * per column group.
 *
 * Paper anchors: larger groups perform better; ~15% improvement at
 * 128 lines; estimated LLC footprints 32 KB (Q14) and 24 KB (Q15).
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples());
    const workload::QueryWorkload workload(tables);

    const unsigned sizes[] = {0, 32, 64, 96, 128};
    const unsigned q14_columns = 4; // f2_wide spans four words
    const unsigned q15_columns = 3; // f3, f6, f10

    util::TablePrinter t(
        "Figure 23: group caching, execution time (Mcycles)");
    t.addRow({"query", "w/o pref.", "32", "64", "96", "128",
              "gain@128", "LLC@128"});
    for (const auto id :
         {workload::QueryId::Q14, workload::QueryId::Q15}) {
        std::vector<double> mcyc;
        for (const unsigned g : sizes) {
            mcyc.push_back(core::runQuery(mem::DeviceKind::RcNvm,
                                          workload, id, g)
                               .megacycles());
        }
        const unsigned cols = id == workload::QueryId::Q14
                                  ? q14_columns
                                  : q15_columns;
        t.addRow({workload::querySpec(id).name, bench::num(mcyc[0]),
                  bench::num(mcyc[1]), bench::num(mcyc[2]),
                  bench::num(mcyc[3]), bench::num(mcyc[4]),
                  bench::num(100.0 * (1.0 - mcyc[4] / mcyc[0]), 1) +
                      "%",
                  std::to_string(128 * 64 * cols / 1024) + " KB"});
    }
    t.print(std::cout);

    std::cout << "\npaper anchors: monotone improvement with group "
                 "size, ~15% at 128 lines; 32 KB / 24 KB of LLC "
                 "pinned for Q14 / Q15.\n";
    return 0;
}
