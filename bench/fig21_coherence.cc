/**
 * @file
 * Figure 21 reproduction: the cache synonym and coherence overhead
 * that RC-NVM's dual addressing introduces, as a fraction of each
 * query's execution time.
 *
 * Paper anchor: 0.2% to 3.4% across Q1-Q13, ~1.06% on average.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const workload::TableSet tables =
        workload::TableSet::standard(bench::benchTuples());
    const workload::QueryWorkload workload(tables);

    util::TablePrinter t(
        "Figure 21: cache synonym + coherence overhead ratio "
        "(RC-NVM)");
    t.addRow({"query", "overhead", "synonym probes",
              "crossed updates"});
    double sum = 0, max_ratio = 0, min_ratio = 1;
    for (const auto id : bench::sqlQueries()) {
        const auto r =
            core::runQuery(mem::DeviceKind::RcNvm, workload, id);
        const double ratio = r.coherenceOverheadRatio();
        sum += ratio;
        max_ratio = std::max(max_ratio, ratio);
        min_ratio = std::min(min_ratio, ratio);
        t.addRow({workload::querySpec(id).name,
                  bench::num(100.0 * ratio, 2) + "%",
                  bench::num(r.stats.at("cache.synonymProbes"), 0),
                  bench::num(r.stats.at("cache.synonymUpdates"),
                             0)});
    }
    t.print(std::cout);

    const double mean =
        sum / static_cast<double>(bench::sqlQueries().size());
    std::cout << "\nrange " << bench::num(100.0 * min_ratio, 2)
              << "% - " << bench::num(100.0 * max_ratio, 2)
              << "%, mean " << bench::num(100.0 * mean, 2)
              << "% (paper anchors: 0.2% - 3.4%, mean 1.06%).\n";
    return 0;
}
