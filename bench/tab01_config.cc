/**
 * @file
 * Table 1 reproduction: print the simulated system configuration
 * actually instantiated by the presets (processor, caches, memory
 * controller, and the three device timing blocks).
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

namespace {

void
printDevice(util::TablePrinter &t, mem::DeviceKind kind)
{
    const mem::TimingParams p = mem::timingFor(kind);
    const mem::Geometry g = mem::geometryFor(kind);
    const double period_ns =
        static_cast<double>(p.clkPeriod.value()) /
        static_cast<double>(ticksPerNs.value());
    t.addRow({toString(kind),
              bench::num(1000.0 / period_ns, 0) + " MT/s",
              std::to_string(p.tCAS.value()), std::to_string(p.tRCD.value()),
              std::to_string(p.tRP.value()), std::to_string(p.tRAS.value()),
              std::to_string(g.channels),
              std::to_string(g.ranksPerChannel),
              std::to_string(g.banksPerRank),
              std::to_string(g.subarraysPerBank *
                             g.rowsPerSubarray),
              std::to_string(g.colsPerSubarray),
              bench::num(static_cast<double>(g.rowBytes()), 0) + " B",
              bench::num(static_cast<double>(g.capacityBytes()) /
                             (1 << 30),
                         0) +
                  " GB",
              bench::num(static_cast<double>(p.cyc(p.tRCD).value()) /
                             static_cast<double>(ticksPerNs.value()),
                         1) +
                  " ns",
              bench::num(static_cast<double>(p.cyc(p.tWR).value()) /
                             static_cast<double>(ticksPerNs.value()),
                         1) +
                  " ns"});
}

} // namespace

int
main()
{
    util::setLogLevel(util::LogLevel::Quiet);
    const auto cfg = core::table1Machine(mem::DeviceKind::RcNvm);

    util::TablePrinter proc("Table 1a: processor and caches");
    proc.addRow({"component", "configuration"});
    proc.addRow({"Processor", std::to_string(cfg.hierarchy.cores) +
                                  " cores, x86-like, 2.0 GHz"});
    proc.addRow({"L1 cache",
                 "private, 64B line, 8-way, " +
                     std::to_string(cfg.hierarchy.l1.sizeBytes /
                                    1024) +
                     " KB"});
    proc.addRow({"L2 cache",
                 "private, 64B line, 8-way, " +
                     std::to_string(cfg.hierarchy.l2.sizeBytes /
                                    1024) +
                     " KB"});
    proc.addRow({"L3 cache",
                 "shared, 64B line, 8-way, " +
                     std::to_string(cfg.hierarchy.l3.sizeBytes /
                                    (1024 * 1024)) +
                     " MB"});
    proc.addRow({"Mem controller",
                 "32-entry request queue per channel, FR-FCFS"});
    proc.print(std::cout);
    std::cout << "\n";

    util::TablePrinter dev("Table 1b: memory devices");
    dev.addRow({"device", "rate", "tCAS", "tRCD", "tRP", "tRAS",
                "ch", "ranks", "banks", "rows", "cols", "row buf",
                "capacity", "read", "write pulse"});
    printDevice(dev, mem::DeviceKind::Dram);
    printDevice(dev, mem::DeviceKind::Rram);
    printDevice(dev, mem::DeviceKind::RcNvm);
    dev.print(std::cout);

    std::cout << "\nRC-NVM additionally exposes an 8 KB column "
                 "buffer per bank and the cload/cstore access "
                 "path.\n";
    return 0;
}
