/**
 * @file
 * Figure 17 reproduction: the eight micro-benchmarks - {row,col} x
 * {read,write} scans of a table stored in the row-oriented (L1) or
 * column-oriented (L2) layout - on RC-NVM, RRAM, and DRAM.
 *
 * Scans are single-stream (one core), matching the paper's
 * microbenchmark character. Paper anchors: RRAM ~35% slower than
 * DRAM on row scans; RC-NVM ~4% slower than RRAM; column scans cut
 * execution time by ~76% (L1) / 77% (L2) versus DRAM.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace rcnvm;

namespace {

core::ExperimentResult
runOne(mem::DeviceKind kind, const workload::TableSet &tables,
       workload::MicroBench mb, imdb::ChunkLayout layout)
{
    const cpu::MachineConfig config = core::table1Machine(kind);
    mem::AddressMap map(mem::geometryFor(kind));
    imdb::Database db(kind, map);
    const auto tid = db.addTable(tables.micro.get(), layout);
    // Single-stream scan on core 0.
    const auto plans = workload::compileMicro(db, tid, mb, 1);
    return core::runPlans(config, plans);
}

} // namespace

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "fig17_micro",
            "Figure 17 reproduction: {row,col} x {read,write} scan "
            "micro-benchmarks\non RC-NVM, RRAM, and DRAM, for "
            "row-oriented (L1) and column-oriented\n(L2) layouts."))
        return 0;

    util::setLogLevel(util::LogLevel::Quiet);
    const std::uint64_t tuples = bench::benchTuples(32768);
    const workload::TableSet tables =
        workload::TableSet::standard(16384, tuples);

    const std::vector<mem::DeviceKind> devices = {
        mem::DeviceKind::RcNvm, mem::DeviceKind::Rram,
        mem::DeviceKind::Dram};

    core::ArtifactWriter artifacts("fig17_micro");

    util::TablePrinter t(
        "Figure 17: micro-benchmarks, execution time (Mcycles)");
    t.addRow({"benchmark", "RC-NVM", "RRAM", "DRAM",
              "RC-NVM vs DRAM"});
    for (const auto layout : {imdb::ChunkLayout::RowOriented,
                              imdb::ChunkLayout::ColumnOriented}) {
        const std::string suffix =
            layout == imdb::ChunkLayout::RowOriented ? "-L1" : "-L2";
        for (const auto mb :
             {workload::MicroBench::RowRead,
              workload::MicroBench::RowWrite,
              workload::MicroBench::ColRead,
              workload::MicroBench::ColWrite}) {
            std::vector<double> mcyc;
            for (const auto kind : devices) {
                const auto r = runOne(kind, tables, mb, layout);
                artifacts.record(std::string(toString(mb)) + suffix +
                                     "." + mem::toString(kind),
                                 r);
                mcyc.push_back(r.megacycles());
            }
            const double reduction =
                100.0 * (1.0 - mcyc[0] / mcyc[2]);
            t.addRow({std::string(toString(mb)) + suffix,
                      bench::num(mcyc[0]), bench::num(mcyc[1]),
                      bench::num(mcyc[2]),
                      (reduction >= 0 ? "-" : "+") +
                          bench::num(std::abs(reduction), 1) + "%"});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper anchors: row scans - DRAM fastest, RRAM "
                 "~35% slower, RC-NVM ~4% behind RRAM; column scans "
                 "- RC-NVM cuts execution time by ~76-77% vs "
                 "DRAM.\n";
    return 0;
}
