/**
 * @file
 * Figure 19 reproduction: number of memory accesses (LLC misses,
 * x10^3) per query on the four devices.
 *
 * Paper anchor: RC-NVM's LLC misses are less than a third of
 * DRAM's on average.
 */

#include <iostream>

#include "bench_common.hh"

using namespace rcnvm;

int
main()
{
    const auto rows = bench::runSqlSuite(bench::benchTuples());

    util::TablePrinter t("Figure 19: LLC misses (x10^3)");
    t.addRow({"query", "RC-NVM", "RRAM", "GS-DRAM", "DRAM"});
    double rc_sum = 0, dram_sum = 0;
    for (const auto &row : rows) {
        rc_sum += row.byDevice[0].llcMisses();
        dram_sum += row.byDevice[3].llcMisses();
        std::vector<std::string> cells = {
            workload::querySpec(row.id).name};
        for (const auto &r : row.byDevice)
            cells.push_back(bench::num(r.llcMisses() / 1000.0, 1));
        t.addRow(cells);
    }
    t.print(std::cout);

    std::cout << "\nRC-NVM/DRAM LLC-miss ratio overall: "
              << bench::num(rc_sum / dram_sum, 3)
              << " (paper anchor: < 1/3 on average).\n";
    return 0;
}
