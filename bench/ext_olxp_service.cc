/**
 * @file
 * Extension bench: OLXP service saturation curves. Sweeps the
 * offered open-loop OLTP load (Poisson point lookups/updates on
 * table-a) against a fixed closed-loop OLAP scan background on all
 * four devices and reports per-class p50/p95/p99 latency, completed
 * and rejected counts, and each device's saturation knee — the
 * highest offered load whose p99 OLTP latency stays under twice the
 * device's own lightest-load p99.
 *
 * Expectation: RC-NVM's column scans touch ~8x fewer lines than the
 * strided scans a row-only device needs, so each scan segment
 * completes several times faster. With most cores busy serving the
 * analytic background, an arriving OLTP request waits for a scan
 * segment to drain before it gets a core — so RC-NVM both clears
 * more scans per second and holds its OLTP tail flat to a higher
 * offered load (a higher knee) than DRAM.
 *
 * `--smoke` runs a reduced sweep (smaller tables, two load points)
 * for CI. RCNVM_SEED reseeds tables and generators; two runs with
 * the same seed produce identical statistics. The service shape is
 * overridable for exploration: RCNVM_OLXP_STREAMS,
 * RCNVM_OLXP_SCAN_TUPLES, RCNVM_OLXP_SCAN_FIELDS,
 * RCNVM_OLXP_UPDATE_PCT, RCNVM_OLXP_HORIZON.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "olxp/service.hh"

using namespace rcnvm;

namespace {

struct SweepPoint {
    Tick interArrival{0}; //!< mean OLTP inter-arrival gap (ticks)
    olxp::ServiceResult result;

    /** Offered load in requests per microsecond (1 us = 1e6 ticks). */
    double offered() const
    {
        return 1.0e6 / static_cast<double>(interArrival.value());
    }
};

std::string
usLabel(double ticks)
{
    return bench::num(ticks / 1.0e6, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (bench::handleUsage(
            argc, argv, "ext_olxp_service",
            "Extension bench: OLXP service saturation curves. Sweeps "
            "the offered\nopen-loop OLTP load against a fixed "
            "closed-loop OLAP scan background\non all four devices "
            "and reports per-class tail latency and each\ndevice's "
            "saturation knee.",
            {"--smoke  reduced sweep (smaller tables, fewer load "
             "points) for CI"}))
        return 0;

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    util::setLogLevel(util::LogLevel::Quiet);

    // Table-a must be several times the 8 MB LLC (tuples are 128 B)
    // or the scan background never reaches memory and the bench
    // measures nothing but core scheduling.
    const std::uint64_t tuples =
        bench::benchTuples(smoke ? 131072 : 262144);
    const std::uint64_t seed = util::envSeed(42);

    // Service shape, overridable for exploration (RCNVM_OLXP_*).
    // Strictly validated: a typo'd override must fail loudly, not
    // silently run a different service shape.
    const auto envU = [](const char *name,
                         std::uint64_t fallback) -> std::uint64_t {
        return util::envUint64(name, fallback);
    };
    olxp::ServiceConfig service;
    service.oltpUpdateFraction =
        static_cast<double>(envU("RCNVM_OLXP_UPDATE_PCT", 20)) /
        100.0;
    service.olapStreams = static_cast<unsigned>(
        envU("RCNVM_OLXP_STREAMS", 3));
    service.olapTuplesPerScan =
        envU("RCNVM_OLXP_SCAN_TUPLES", 512);
    service.olapFields = static_cast<unsigned>(
        envU("RCNVM_OLXP_SCAN_FIELDS", 1));
    service.horizon = static_cast<Tick>(envU(
        "RCNVM_OLXP_HORIZON", smoke ? 16000000 : 40000000));
    service.runQueueCapacity = 64;

    // Mean inter-arrival sweep, heaviest last. Each halving doubles
    // the offered load; the lightest point is the per-device p99
    // baseline the knee is measured against.
    const std::vector<Tick> loads =
        smoke ? std::vector<Tick>{Tick{200000}, Tick{100000},
                                  Tick{50000}}
              : std::vector<Tick>{Tick{200000}, Tick{100000},
                                  Tick{50000}, Tick{25000},
                                  Tick{12500}, Tick{6250}};

    const workload::TableSet tables =
        workload::TableSet::standard(tuples, 1024, seed);
    const workload::QueryWorkload workload(tables);

    core::ArtifactWriter artifacts("ext_olxp_service");

    util::TablePrinter t(
        "Extension: OLXP service saturation (latency in us; offered "
        "load in OLTP req/us; OLAP background: " +
        std::to_string(service.olapStreams) + " scan stream(s))");
    t.addRow({"device", "offered", "oltp done", "rej", "p50", "p95",
              "p99", "olap done", "olap p99"});

    std::vector<std::vector<SweepPoint>> sweeps;
    for (const auto kind : bench::allDevices()) {
        mem::AddressMap map(mem::geometryFor(kind));
        const workload::PlacedDatabase pd = workload.place(kind, map);

        std::vector<SweepPoint> sweep;
        for (const Tick ia : loads) {
            cpu::MachineConfig config = core::table1Machine(kind);
            config.seed = seed;
            cpu::Machine machine(config);

            olxp::ServiceConfig cfg = service;
            cfg.oltpInterArrival = ia;
            olxp::QueryScheduler scheduler(machine, pd, cfg);

            SweepPoint point;
            point.interArrival = ia;
            point.result = scheduler.run();
            if (artifacts.enabled()) {
                artifacts.record(std::string(mem::toString(kind)) +
                                     "-ia" + std::to_string(ia.value()),
                                 point.result.run.stats,
                                 point.result.run.ticks);
            }

            const olxp::ServiceResult &r = point.result;
            t.addRow({mem::toString(kind),
                      bench::num(point.offered(), 2),
                      std::to_string(r.oltpCompleted),
                      std::to_string(r.oltpRejected),
                      usLabel(r.oltpP50), usLabel(r.oltpP95),
                      usLabel(r.oltpP99),
                      std::to_string(r.olapCompleted),
                      usLabel(r.olapP99)});
            sweep.push_back(std::move(point));
        }
        sweeps.push_back(std::move(sweep));
    }
    t.print(std::cout);

    // Knee: the highest offered load whose p99 stays under 2x the
    // device's lightest-load baseline with no admission rejects.
    std::cout << "\nsaturation knees (p99 < 2x own baseline, no "
                 "rejects):\n";
    std::vector<double> knees;
    for (std::size_t d = 0; d < sweeps.size(); ++d) {
        const std::vector<SweepPoint> &sweep = sweeps[d];
        const double base = sweep.front().result.oltpP99;
        double knee = 0;
        for (const SweepPoint &p : sweep) {
            if (p.result.oltpP99 < 2.0 * base &&
                p.result.oltpRejected == 0) {
                knee = std::max(knee, p.offered());
            }
        }
        knees.push_back(knee);
        std::cout << "  " << mem::toString(bench::allDevices()[d])
                  << ": " << bench::num(knee, 2)
                  << " req/us (baseline p99 " << usLabel(base)
                  << " us)\n";
    }

    // Headline: RC-NVM vs DRAM under the same concurrent scans.
    // allDevices() order is RC-NVM, RRAM, GS-DRAM, DRAM.
    const double rc_knee = knees[0], dram_knee = knees[3];
    const olxp::ServiceResult &rc_heavy =
        sweeps[0].back().result;
    const olxp::ServiceResult &dram_heavy =
        sweeps[3].back().result;
    std::cout << "\nheadline: under concurrent column scans, "
                 "RC-NVM sustains "
              << bench::num(dram_knee > 0 ? rc_knee / dram_knee : 0,
                            1)
              << "x DRAM's offered OLTP load before its p99 "
                 "doubles; at the heaviest point RC-NVM p99 = "
              << usLabel(rc_heavy.oltpP99) << " us vs DRAM p99 = "
              << usLabel(dram_heavy.oltpP99) << " us ("
              << dram_heavy.oltpRejected << " DRAM rejects, "
              << rc_heavy.oltpRejected << " RC-NVM rejects).\n";

    if (rc_knee <= dram_knee) {
        std::cout << "WARNING: expected RC-NVM knee > DRAM knee\n";
        // The smoke sweep has too few tail samples per point to pin
        // the knee down to a log2 bucket; it validates the service
        // pipeline, the full sweep enforces the result.
        return smoke ? 0 : 1;
    }
    return 0;
}
