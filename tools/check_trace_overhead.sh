#!/bin/sh
# Tracing-overhead smoke: build the simulator twice — packet-trace
# probes compiled in (but runtime-disabled, the shipping default) and
# compiled out entirely — run the end-to-end throughput benchmark in
# both, and fail when the compiled-in/disabled build is more than
# THRESHOLD percent slower. Guards the "<2% when disabled" promise of
# the tracer's one-pointer-load hot-path check with headroom for
# benchmark noise.
#
# usage: check_trace_overhead.sh [threshold-percent] [repetitions]
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
threshold=${1:-10}
reps=${2:-5}
bench_filter='BM_EndToEndSimulatedAccesses'

run_bench() {
    bdir=$1
    trace=$2
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_PACKET_TRACE="$trace" >/dev/null
    cmake --build "$bdir" -j "$(nproc)" \
        --target simulator_throughput >/dev/null
    "$bdir/bench/simulator_throughput" \
        --benchmark_filter="$bench_filter" \
        --benchmark_repetitions="$reps" \
        --benchmark_report_aggregates_only=true \
        --benchmark_format=csv 2>/dev/null |
        awk -F, '/_median/ { gsub(/"/, "", $4); print $4 }'
}

on_ns=$(run_bench "$root/build-trace-on" ON)
off_ns=$(run_bench "$root/build-trace-off" OFF)

echo "median $bench_filter cpu time: traced-but-disabled ${on_ns}ns," \
     "compiled-out ${off_ns}ns"

awk -v on="$on_ns" -v off="$off_ns" -v lim="$threshold" 'BEGIN {
    if (off <= 0) { print "bad baseline measurement"; exit 1 }
    overhead = 100 * (on - off) / off
    printf "disabled-tracing overhead: %.2f%% (limit %s%%)\n", \
        overhead, lim
    exit (overhead <= lim) ? 0 : 1
}'
