/**
 * @file
 * rcnvm_trace_convert: convert access traces between the text
 * format (trace_io), the binary replay format (trace_binary), and a
 * documented subset of DynamoRIO drcachesim's offline-view listing.
 *
 *   rcnvm_trace_convert text2bin <in.trace> <out.rtb>
 *   rcnvm_trace_convert bin2text <in.rtb> <out.trace>
 *   rcnvm_trace_convert drcachesim <in.txt> <out.rtb> [cores]
 *   rcnvm_trace_convert info <in.rtb>
 *
 * The drcachesim subset accepts the memory-reference lines of a
 * `drcachesim -simulator_type view` (or `drmemtrace view`) listing:
 * any line containing, in order, a `T<tid>` thread token, a
 * `read` / `write` / `ifetch` type token, `<n> byte(s)`, and
 * `@ <hex-addr>`. Thread ids map to cores round-robin in order of
 * first appearance (modulo the core count, default 4); `ifetch`
 * records are dropped (the simulated hierarchy is data-only);
 * marker and header lines are skipped. Numeric fields are strictly
 * validated — a malformed size or address is a fatal error with the
 * line number, never a silently different trace.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "trace/trace_binary.hh"
#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace rcnvm;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  rcnvm_trace_convert text2bin <in.trace> <out.rtb>\n"
           "  rcnvm_trace_convert bin2text <in.rtb> <out.trace>\n"
           "  rcnvm_trace_convert drcachesim <in.txt> <out.rtb> "
           "[cores]\n"
           "  rcnvm_trace_convert info <in.rtb>\n";
    return 2;
}

/** Strictly parse a numeric CLI/trace token; fatal with context. */
std::uint64_t
parseNumber(const std::string &token, const char *what,
            unsigned line_no)
{
    std::uint64_t value = 0;
    switch (util::parseUint64(token.c_str(), value)) {
      case util::ParseUint::Ok:
        return value;
      case util::ParseUint::Overflow:
        rcnvm_fatal("line ", line_no, ": ", what, " '", token,
                    "' overflows 64 bits");
      case util::ParseUint::Malformed:
        break;
    }
    rcnvm_fatal("line ", line_no, ": ", what, " '", token,
                "' is not a valid decimal or 0x-hex unsigned "
                "integer");
}

int
cmdText2Bin(const char *in, const char *out)
{
    std::ifstream file(in);
    if (!file)
        rcnvm_fatal("cannot open trace file ", in);
    const auto plans = trace::readTrace(file);
    trace::writeBinaryTrace(out, plans);

    std::uint64_t ops = 0;
    for (const auto &plan : plans)
        ops += plan.size();
    std::cout << "wrote " << ops << " record(s) for " << plans.size()
              << " core(s) to " << out << "\n";
    return 0;
}

int
cmdBin2Text(const char *in, const char *out)
{
    const auto plans = trace::readBinaryTrace(in);

    // The text format carries no byte count on loads (L/CL lines);
    // records with a non-default load size cannot round-trip.
    std::uint64_t lossy = 0;
    for (const auto &plan : plans) {
        for (const cpu::MemOp &op : plan) {
            if ((op.kind == cpu::OpKind::Load ||
                 op.kind == cpu::OpKind::CLoad) &&
                op.bytes != 64)
                ++lossy;
        }
    }
    if (lossy > 0)
        util::warn(lossy, " load record(s) carry a non-default size;"
                          " the text format writes them as 64-byte "
                          "loads");

    std::ofstream file(out);
    if (!file)
        rcnvm_fatal("cannot open ", out, " for writing");
    trace::writeTrace(file, plans);
    std::cout << "wrote " << plans.size() << " core section(s) to "
              << out << "\n";
    return 0;
}

int
cmdInfo(const char *in)
{
    trace::MmapTraceReader reader(in);
    const trace::TraceFileHeader &h = reader.header();
    std::cout << "file:     " << in << "\n"
              << "version:  " << h.version << "\n"
              << "cores:    " << h.coreCount << "\n"
              << "records:  " << h.recordCount << "\n";
    for (std::size_t c = 0; c < reader.coreRecordCounts().size();
         ++c) {
        std::cout << "  core " << c << ": "
                  << reader.coreRecordCounts()[c] << " record(s)\n";
    }
    return 0;
}

int
cmdDrcachesim(const char *in, const char *out,
              std::uint64_t core_count)
{
    std::ifstream file(in);
    if (!file)
        rcnvm_fatal("cannot open drcachesim listing ", in);

    trace::BinaryTraceWriter writer(
        out, static_cast<unsigned>(core_count));
    std::map<std::uint64_t, unsigned> tidToCore;
    std::uint64_t converted = 0, ifetches = 0, skipped = 0;
    unsigned line_no = 0;
    std::string line;

    while (std::getline(file, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string token, type;
        std::uint64_t tid = 0;
        bool haveTid = false;

        // Scan for the `T<tid>` token; everything before it
        // (ordinals, timestamps) is presentation.
        while (ls >> token) {
            if (token.size() > 1 && token[0] == 'T' &&
                util::parseUint64(token.c_str() + 1, tid) ==
                    util::ParseUint::Ok) {
                haveTid = true;
                break;
            }
        }
        if (!haveTid || !(ls >> type)) {
            ++skipped;
            continue;
        }
        if (type == "ifetch") {
            ++ifetches;
            continue;
        }
        if (type != "read" && type != "write") {
            ++skipped; // markers and other record kinds
            continue;
        }

        std::string sizeTok, byteWord, at, addrTok;
        if (!(ls >> sizeTok >> byteWord >> at >> addrTok) ||
            byteWord != "byte(s)" || at != "@") {
            rcnvm_fatal("line ", line_no, ": malformed ", type,
                        " record (expected '<n> byte(s) @ "
                        "<addr>')");
        }
        const std::uint64_t size =
            parseNumber(sizeTok, "size", line_no);
        if (size == 0 ||
            size > std::numeric_limits<std::uint32_t>::max())
            rcnvm_fatal("line ", line_no, ": size ", size,
                        " is outside the supported 1..2^32-1 "
                        "range");
        const std::uint64_t addr =
            parseNumber(addrTok, "address", line_no);

        const auto [it, inserted] = tidToCore.try_emplace(
            tid, static_cast<unsigned>(tidToCore.size() %
                                       core_count));
        const unsigned core = it->second;
        (void)inserted;
        writer.append(
            core, type == "read"
                      ? cpu::MemOp::load(
                            addr, static_cast<std::uint32_t>(size))
                      : cpu::MemOp::store(
                            addr, static_cast<std::uint32_t>(size)));
        ++converted;
    }
    writer.finalize();

    std::cout << "converted " << converted << " record(s) from "
              << tidToCore.size() << " thread(s) onto " << core_count
              << " core(s) (" << ifetches << " ifetch dropped, "
              << skipped << " non-reference line(s) skipped) to "
              << out << "\n";
    if (converted == 0)
        rcnvm_fatal("no memory-reference lines recognised in ", in,
                    " (expected drcachesim view listing lines: "
                    "'T<tid> read|write <n> byte(s) @ <addr>')");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "text2bin" && argc == 4)
        return cmdText2Bin(argv[2], argv[3]);
    if (cmd == "bin2text" && argc == 4)
        return cmdBin2Text(argv[2], argv[3]);
    if (cmd == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "drcachesim" && (argc == 4 || argc == 5)) {
        std::uint64_t cores = 4;
        if (argc == 5) {
            cores = parseNumber(argv[4], "core count", 0);
            if (cores == 0 || cores > 256)
                rcnvm_fatal("core count must be 1..256, got ",
                            cores);
        }
        return cmdDrcachesim(argv[2], argv[3], cores);
    }
    return usage();
}
