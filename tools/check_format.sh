#!/bin/sh
# Format gate: verify every tracked C++ file against .clang-format.
#
# Usage: tools/check_format.sh        # check (CI mode)
#        tools/check_format.sh --fix  # rewrite files in place
#
# Exits 0 with a notice when clang-format is not installed (the
# container image ships gcc only); CI installs the tool and so gets
# the real gate.
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)

fmt=${CLANG_FORMAT:-clang-format}
if ! command -v "$fmt" >/dev/null 2>&1; then
    echo "check_format: $fmt not found; skipping (install" \
         "clang-format to run the gate locally)"
    exit 0
fi

files=$(find "$root/src" "$root/tests" "$root/bench" "$root/tools" \
             "$root/examples" \( -name '*.cc' -o -name '*.hh' \) \
        | sort)

if [ "${1:-}" = "--fix" ]; then
    # shellcheck disable=SC2086
    "$fmt" -i --style=file $files
    exit 0
fi

status=0
for f in $files; do
    if ! "$fmt" --style=file --dry-run -Werror "$f" >/dev/null 2>&1
    then
        echo "needs formatting: ${f#"$root"/}"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check_format: run tools/check_format.sh --fix"
fi
exit "$status"
