#!/bin/sh
# Static-analysis orchestrator: one entry point for every analysis
# layer the repo has, in increasing order of toolchain demands.
#
#   1. rcnvm-lint   repo-specific invariants (determinism, strong
#                   types, event-capture safety, strict parsing, stat
#                   hygiene — DESIGN.md 4j). Needs only the tier-1
#                   toolchain, so it ALWAYS runs and always gates,
#                   against tools/static_analysis_baseline.txt.
#   2. clang-tidy   the curated .clang-tidy set via
#                   tools/run_clang_tidy.sh; that script skips with a
#                   notice when the tool is missing and gates when
#                   present.
#   3. scan-build   the clang static analyzer over a scratch build.
#                   Skips with a notice when missing. Report-only by
#                   default — the analyzer's cross-TU path findings
#                   have a nonzero false-positive rate and no triaged
#                   baseline count exists yet — set
#                   RCNVM_SCAN_BUILD_GATE=<max-bugs> to fail when the
#                   report exceeds that count (0 = any bug fails).
#                   The HTML report lands in <build>/scan-report for
#                   artifact upload either way.
#
# Usage: tools/run_static_analysis.sh [build-dir]
#   build-dir defaults to build/; rcnvm-lint is built there if the
#   binary is absent. scan-build uses its own scratch directory
#   (<build-dir>-scan) so analyzer-flag rebuilds never disturb the
#   primary build.
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
bdir=${1:-"$root/build"}
status=0

# --- 1. rcnvm-lint (always runs, always gates) ---------------------
lint="$bdir/tools/rcnvm_lint"
if [ ! -x "$lint" ]; then
    echo "== building rcnvm_lint =="
    cmake -B "$bdir" -S "$root" >/dev/null
    cmake --build "$bdir" --target rcnvm_lint -j "$(nproc)"
fi
echo "== rcnvm-lint =="
"$lint" --root "$root" \
    --baseline "$root/tools/static_analysis_baseline.txt" || status=1

# --- 2. clang-tidy (gates when installed) --------------------------
echo "== clang-tidy =="
"$root/tools/run_clang_tidy.sh" "$bdir" || status=1

# --- 3. scan-build (report-only unless gated) ----------------------
echo "== scan-build =="
scanner=${SCAN_BUILD:-scan-build}
if ! command -v "$scanner" >/dev/null 2>&1; then
    echo "run_static_analysis: $scanner not found; skipping (install" \
         "clang-tools to run the analyzer locally)"
else
    sdir="$bdir-scan"
    report="$bdir/scan-report"
    rm -rf "$report"
    mkdir -p "$report"
    # The analyzer intercepts the compiler, so it needs its own
    # configure + build; -o keeps every run's HTML in one place.
    "$scanner" -o "$report" --use-c++="${CXX:-c++}" \
        cmake -B "$sdir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        >/dev/null
    "$scanner" -o "$report" --use-c++="${CXX:-c++}" \
        cmake --build "$sdir" -j "$(nproc)"
    # scan-build writes one report-*.html per bug under a
    # timestamped subdirectory; no subdirectory means a clean run.
    bugs=$(find "$report" -name 'report-*.html' 2>/dev/null | wc -l)
    echo "run_static_analysis: scan-build reported $bugs bug(s)" \
         "(report: $report)"
    gate=${RCNVM_SCAN_BUILD_GATE:-}
    if [ -n "$gate" ] && [ "$bugs" -gt "$gate" ]; then
        echo "run_static_analysis: exceeds RCNVM_SCAN_BUILD_GATE=$gate"
        status=1
    fi
fi

if [ "$status" -ne 0 ]; then
    echo "run_static_analysis: FAILED (findings above)"
else
    echo "run_static_analysis: all layers clean"
fi
exit "$status"
