#!/bin/sh
# clang-tidy gate: run the curated .clang-tidy check set over every
# library translation unit, driven by the compilation database.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [-- extra tidy args]
#
# Exits 0 with a notice when clang-tidy is not installed (the
# container image ships gcc only); CI installs the tool and so gets
# the real gate. Findings are written to stdout and, when
# RCNVM_TIDY_LOG is set, duplicated there for artifact upload.
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
bdir=${1:-"$root/build"}

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "run_clang_tidy: $tidy not found; skipping (install" \
         "clang-tidy to run the gate locally)"
    exit 0
fi

if [ ! -f "$bdir/compile_commands.json" ]; then
    echo "run_clang_tidy: $bdir/compile_commands.json missing;" \
         "configure first: cmake -B $bdir -S $root"
    exit 1
fi

# Library TUs only: the gate protects src/; tests and benches are
# covered by -Wall -Wextra and the behavioural suite.
files=$(find "$root/src" -name '*.cc' | sort)

log=${RCNVM_TIDY_LOG:-}
status=0
for f in $files; do
    if [ -n "$log" ]; then
        "$tidy" -p "$bdir" --quiet "$f" 2>&1 | tee -a "$log" || status=1
    else
        "$tidy" -p "$bdir" --quiet "$f" || status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: findings above must be fixed or suppressed"
fi
exit "$status"
