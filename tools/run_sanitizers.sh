#!/bin/sh
# Sanitizer job: build the full tree under sanitizers and run ctest.
# Uses dedicated build directories so it never disturbs the primary
# build/. Any sanitizer report fails the run (halt_on_error below and
# -DCTEST exit codes).
#
# Usage: run_sanitizers.sh [mode] [build-dir]
#   mode: asan-ubsan (default) | tsan
#
# tsan exists for the channel-sharded parallel engine: it rebuilds
# with -fsanitize=thread and runs the multi-threaded tests (the
# ParallelEngine suite plus anything else that spawns workers) with
# RCNVM_THREADS=4 so the shard synchronisation is exercised under
# the race detector. ThreadSanitizer cannot be combined with ASan,
# hence the separate mode and build directory.
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
mode=${1:-asan-ubsan}

case "$mode" in
asan-ubsan)
    bdir=${2:-"$root/build-sanitize"}
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_SANITIZE="address;undefined"
    cmake --build "$bdir" -j "$(nproc)"

    ASAN_OPTIONS=detect_leaks=1:halt_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
        ctest --test-dir "$bdir" --output-on-failure -j "$(nproc)"

    # Drive the trace converter over the checked-in sample under the
    # same sanitizers: parsing, the streaming writer, and the mmap
    # reader all run against real file I/O here, not just in-process
    # test fixtures.
    tdir=$(mktemp -d)
    trap 'rm -rf "$tdir"' EXIT
    ASAN_OPTIONS=detect_leaks=1:halt_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    sh -c "
        '$bdir/tools/rcnvm_trace_convert' text2bin \
            '$root/tests/data/sample_mixed.trace' '$tdir/sample.rtb'
        '$bdir/tools/rcnvm_trace_convert' info '$tdir/sample.rtb'
        '$bdir/tools/rcnvm_trace_convert' bin2text \
            '$tdir/sample.rtb' '$tdir/sample.trace'
    "
    ;;
tsan)
    bdir=${2:-"$root/build-tsan"}
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_SANITIZE="thread"
    cmake --build "$bdir" -j "$(nproc)"

    # The whole suite runs with the engine forced on, so every
    # machine-level test doubles as a shard-race probe; gtest death
    # tests fork, which TSan tolerates but slows, so keep -j modest.
    TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
    RCNVM_THREADS=4 \
        ctest --test-dir "$bdir" --output-on-failure -j 2
    ;;
*)
    echo "unknown mode '$mode' (want asan-ubsan or tsan)" >&2
    exit 2
    ;;
esac
