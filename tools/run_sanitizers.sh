#!/bin/sh
# Sanitizer job: build the full tree under sanitizers and run ctest.
# Uses dedicated build directories so it never disturbs the primary
# build/. Any sanitizer report fails the run (halt_on_error below and
# -DCTEST exit codes).
#
# Usage: run_sanitizers.sh [mode] [build-dir]
#   mode: asan-ubsan (default) | tsan | integer
#
# tsan exists for the channel-sharded parallel engine: it rebuilds
# with -fsanitize=thread and runs the multi-threaded tests (the
# ParallelEngine suite plus anything else that spawns workers) with
# RCNVM_THREADS=4 so the shard synchronisation is exercised under
# the race detector. ThreadSanitizer cannot be combined with ASan,
# hence the separate mode and build directory.
#
# integer hunts silent narrowing on the Tick/Cycles/Addr arithmetic
# paths that the strong types (DESIGN.md 4e) cannot cover — .value()
# escapes, stat accumulation, percentile math. Under clang it uses
# the full -fsanitize=integer,implicit-conversion groups; gcc has no
# equivalent groups, so it falls back to the UBSan checks gcc does
# ship (signed overflow, shift, divide, bounds). Unsigned wraparound
# is defined behaviour that the clang groups nevertheless report, so
# this mode is NON-GATING by default: it always prints its summary
# but only fails the run when RCNVM_UBSAN_INT_GATE=1 is set. CI runs
# it report-only until the clang findings are triaged; flip the gate
# on once the report is clean.
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
mode=${1:-asan-ubsan}

case "$mode" in
asan-ubsan)
    bdir=${2:-"$root/build-sanitize"}
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_SANITIZE="address;undefined"
    cmake --build "$bdir" -j "$(nproc)"

    ASAN_OPTIONS=detect_leaks=1:halt_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
        ctest --test-dir "$bdir" --output-on-failure -j "$(nproc)"

    # Drive the trace converter over the checked-in sample under the
    # same sanitizers: parsing, the streaming writer, and the mmap
    # reader all run against real file I/O here, not just in-process
    # test fixtures.
    tdir=$(mktemp -d)
    trap 'rm -rf "$tdir"' EXIT
    ASAN_OPTIONS=detect_leaks=1:halt_on_error=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    sh -c "
        '$bdir/tools/rcnvm_trace_convert' text2bin \
            '$root/tests/data/sample_mixed.trace' '$tdir/sample.rtb'
        '$bdir/tools/rcnvm_trace_convert' info '$tdir/sample.rtb'
        '$bdir/tools/rcnvm_trace_convert' bin2text \
            '$tdir/sample.rtb' '$tdir/sample.trace'
    "
    ;;
tsan)
    bdir=${2:-"$root/build-tsan"}
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_SANITIZE="thread"
    cmake --build "$bdir" -j "$(nproc)"

    # The whole suite runs with the engine forced on, so every
    # machine-level test doubles as a shard-race probe; gtest death
    # tests fork, which TSan tolerates but slows, so keep -j modest.
    TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
    RCNVM_THREADS=4 \
        ctest --test-dir "$bdir" --output-on-failure -j 2
    ;;
integer)
    bdir=${2:-"$root/build-ubsan-int"}

    # Prefer clang for its integer/implicit-conversion check groups;
    # honour an explicit CXX either way.
    cxx=${CXX:-}
    if [ -z "$cxx" ] && command -v clang++ >/dev/null 2>&1; then
        cxx=clang++
    fi
    if [ -n "$cxx" ] && "$cxx" --version 2>/dev/null \
            | grep -qi clang; then
        sans="integer;implicit-conversion"
        cxxargs="-DCMAKE_CXX_COMPILER=$cxx"
    else
        sans="signed-integer-overflow;shift;integer-divide-by-zero;bounds"
        cxxargs=""
        echo "run_sanitizers: clang++ not found; using the gcc UBSan" \
             "subset ($sans)"
    fi

    # shellcheck disable=SC2086  # cxxargs is one optional -D flag
    cmake -B "$bdir" -S "$root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DRCNVM_SANITIZE="$sans" $cxxargs
    cmake --build "$bdir" -j "$(nproc)"

    status=0
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
        ctest --test-dir "$bdir" --output-on-failure -j "$(nproc)" \
        || status=$?

    if [ "$status" -ne 0 ]; then
        if [ "${RCNVM_UBSAN_INT_GATE:-0}" = "1" ]; then
            echo "run_sanitizers: integer mode found issues (gating)"
            exit "$status"
        fi
        echo "run_sanitizers: integer mode found issues (NON-GATING;" \
             "set RCNVM_UBSAN_INT_GATE=1 to make this fail the run)"
    else
        echo "run_sanitizers: integer mode clean ($sans)"
    fi
    ;;
*)
    echo "unknown mode '$mode' (want asan-ubsan, tsan or integer)" >&2
    exit 2
    ;;
esac
