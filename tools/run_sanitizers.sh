#!/bin/sh
# Sanitizer job: build the full tree with ASan+UBSan and run ctest.
# Uses a dedicated build directory so it never disturbs the primary
# build/. Any sanitizer report fails the run (halt_on_error below and
# -DCTEST exit codes).
set -eu

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
bdir=${1:-"$root/build-sanitize"}

cmake -B "$bdir" -S "$root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRCNVM_SANITIZE="address;undefined"
cmake --build "$bdir" -j "$(nproc)"

ASAN_OPTIONS=detect_leaks=1:halt_on_error=1 \
UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir "$bdir" --output-on-failure -j "$(nproc)"
