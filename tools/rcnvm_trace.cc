/**
 * @file
 * rcnvm_trace: dump Table-2 query workloads as portable memory
 * traces and replay traces on any of the four device models —
 * the command-line counterpart of the paper's RCNVMTrace artifact.
 *
 *   rcnvm_trace list
 *   rcnvm_trace dump <Q1..Q15> <rcnvm|rram|dram|gsdram> [file]
 *   rcnvm_trace run  <rcnvm|rram|dram|gsdram> <file>
 *
 * Scale with RCNVM_TUPLES (default 65536 for traces).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "mem/memory_system.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "util/random.hh"

using namespace rcnvm;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
           "  rcnvm_trace list\n"
           "  rcnvm_trace dump <Q1..Q15> <device> [file]\n"
           "  rcnvm_trace run <device> <file>\n"
           "devices: rcnvm, rram, dram, gsdram\n";
    return 2;
}

bool
parseDevice(const std::string &name, mem::DeviceKind &kind)
{
    if (name == "rcnvm")
        kind = mem::DeviceKind::RcNvm;
    else if (name == "rram")
        kind = mem::DeviceKind::Rram;
    else if (name == "dram")
        kind = mem::DeviceKind::Dram;
    else if (name == "gsdram")
        kind = mem::DeviceKind::GsDram;
    else
        return false;
    return true;
}

bool
parseQuery(const std::string &name, workload::QueryId &id)
{
    for (const auto &spec : workload::allQueries()) {
        if (name == spec.name) {
            id = spec.id;
            return true;
        }
    }
    return false;
}

std::uint64_t
traceTuples()
{
    return util::envUint64("RCNVM_TUPLES", 65536);
}

int
cmdList()
{
    for (const auto &spec : workload::allQueries()) {
        std::cout << spec.name << "  [" << spec.category << "]  "
                  << spec.sql << "\n";
    }
    return 0;
}

int
cmdDump(const std::string &query_name, const std::string &device,
        const char *path)
{
    workload::QueryId id;
    mem::DeviceKind kind;
    if (!parseQuery(query_name, id) || !parseDevice(device, kind))
        return usage();

    const workload::TableSet tables =
        workload::TableSet::standard(traceTuples());
    const workload::QueryWorkload wl(tables);
    mem::AddressMap map(mem::geometryFor(kind));
    const workload::PlacedDatabase pd = wl.place(kind, map);
    const workload::CompiledQuery q = wl.compile(id, pd);

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (path) {
        file.open(path);
        if (!file)
            rcnvm_fatal("cannot open ", path, " for writing");
        os = &file;
    }
    *os << "# query " << query_name << " on " << toString(kind)
        << ", " << traceTuples() << " tuples per table\n";
    for (std::size_t phase = 0; phase < q.phases.size(); ++phase) {
        *os << "# phase " << phase
            << " (phases are separated by full fences)\n";
        trace::writeTrace(*os, q.phases[phase]);
        if (phase + 1 < q.phases.size()) {
            // A fence on every core keeps phase boundaries intact
            // when the trace is replayed as one flat plan set.
            for (std::size_t c = 0; c < q.phases[phase].size();
                 ++c) {
                *os << "@core " << c << "\nF\n";
            }
        }
    }
    if (path) {
        std::cout << "wrote " << q.totalOps() << " ops to " << path
                  << "\n";
    }
    return 0;
}

int
cmdRun(const std::string &device, const char *path)
{
    mem::DeviceKind kind;
    if (!parseDevice(device, kind))
        return usage();
    std::ifstream file(path);
    if (!file)
        rcnvm_fatal("cannot open trace file ", path);
    const auto plans = trace::readTrace(file);

    cpu::MachineConfig config = core::table1Machine(kind);
    if (plans.size() > config.hierarchy.cores)
        rcnvm_fatal("trace has ", plans.size(),
                    " cores; the machine has ",
                    config.hierarchy.cores);

    const auto r = core::runPlans(config, plans);

    core::ArtifactWriter artifacts("rcnvm_trace");
    artifacts.record(std::string("run.") + device, r);

    std::cout << "device:           " << toString(kind) << "\n"
              << "cores in trace:   " << plans.size() << "\n"
              << "execution:        " << r.megacycles()
              << " Mcycles (" << r.ticks / 1000000.0 << " us)\n"
              << "LLC misses:       " << r.llcMisses() << "\n"
              << "memory requests:  " << r.stats.at("mem.requests")
              << "\n"
              << "buffer miss rate: "
              << 100.0 * r.bufferMissRate() << "%\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::setLogLevel(util::LogLevel::Quiet);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "dump" && (argc == 4 || argc == 5))
        return cmdDump(argv[2], argv[3], argc == 5 ? argv[4]
                                                   : nullptr);
    if (cmd == "run" && argc == 4)
        return cmdRun(argv[2], argv[3]);
    return usage();
}
