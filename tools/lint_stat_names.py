#!/usr/bin/env python3
"""Stat-name lint: every statistic a consumer looks up must exist.

DESIGN.md 4c made ``StatsMap::at`` throw on unknown names so a
renamed statistic fails loudly at run time; this lint moves the same
failure to CI time, and catches the consumers ``at`` cannot protect
(``get`` silently reads 0.0, the DESIGN.md table silently rots).

Registration side (src/): string literals in the first argument of
``set``/``add``/``addCounter``/``addCounterFn``/``addValue``/
``addSampled``/``addHistogram``/``addGauge``/``addFormula``.
A concatenated first argument ("cpu.core" + std::to_string(c) + ...)
registers its leading literal as a *prefix*. Sampled and histogram
registrations fan out to dotted sub-entries at snapshot time, so a
lookup also passes when a registered name is its dot-boundary prefix.

Consumer side: string literals passed to ``get``/``at``/``counter``
in bench/ and tests/, plus every backticked dotted name in the
DESIGN.md 4c statistics table (with {a,b} brace alternation expanded
and <i> placeholders skipped).

src/ is a consumer too: derived-formula bodies and cross-tier
re-exports look up other statistics by name (``g.counter(...)``
inside an ``addFormula``, the hybrid tier's ``tier.near.*`` counters
reading the near device's ``mem.*`` map). Those lookups are
collected with the wider accessor set ``get``/``at``/``counter``/
``sampled``/``histogram``/``value`` and must resolve against the
registrations like any bench-side lookup — a formula referencing a
renamed input would otherwise silently evaluate over 0.0.

Exit status: 0 when every consumed name resolves, 1 otherwise with
one line per unknown name.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

REGISTER_FNS = (
    "set|add|addCounter|addCounterFn|addValue|addSampled|"
    "addHistogram|addGauge|addFormula"
)
LOOKUP_FNS = "get|at|counter"
# src-side formula bodies reach inputs through the typed accessors
# as well; the wider set only applies where registrations also live.
SRC_LOOKUP_FNS = "get|at|counter|sampled|histogram|value"

LITERAL_REG = re.compile(
    r"\b(?:%s)\(\s*\"([^\"]+)\"\s*[,)]" % REGISTER_FNS
)
PREFIX_REG = re.compile(r"\b(?:%s)\(\s*\"([^\"]+)\"\s*\+" % REGISTER_FNS)
# name + "Suffix" in first-arg position: the base is dynamic but the
# trailing literal is a known family suffix (…LatencyP99 style).
SUFFIX_REG = re.compile(
    r"\b(?:%s)\(\s*\w+\s*\+\s*\"([^\"]+)\"\s*[,)]" % REGISTER_FNS
)
LOOKUP = re.compile(r"\b(?:%s)\(\s*\"([^\"]+)\"\s*[,)]" % LOOKUP_FNS)
SRC_LOOKUP = re.compile(
    r"\b(?:%s)\(\s*\"([^\"]+)\"\s*[,)]" % SRC_LOOKUP_FNS
)

# Dotted names only: plain words ("hits", "g") are local test
# registries exercising the registry itself, not simulator contract.
DOTTED = re.compile(r"^[a-zA-Z0-9_]+(\.[a-zA-Z0-9_]+)+$")


def cpp_sources(*dirs):
    for d in dirs:
        for p in sorted((ROOT / d).rglob("*.cc")):
            yield p
        for p in sorted((ROOT / d).rglob("*.hh")):
            yield p


def collect_registrations():
    names, prefixes, suffixes = set(), set(), set()
    for path in cpp_sources("src"):
        text = path.read_text()
        names.update(LITERAL_REG.findall(text))
        prefixes.update(PREFIX_REG.findall(text))
        suffixes.update(SUFFIX_REG.findall(text))
    return names, prefixes, suffixes


def collect_code_lookups():
    found = {}
    for path in cpp_sources("bench", "tests"):
        text = path.read_text()
        # A test that registers its own local names (registry
        # mechanics tests) may consume those names in the same file.
        local = set(LITERAL_REG.findall(text))
        for m in LOOKUP.finditer(text):
            name = m.group(1)
            if name in local or any(
                name.startswith(n + ".") for n in local
            ):
                continue
            line = text.count("\n", 0, m.start()) + 1
            found.setdefault(name, []).append(
                "%s:%d" % (path.relative_to(ROOT), line)
            )
    return found


def collect_src_lookups():
    """Formula bodies and re-export lambdas under src/ consuming
    other registered statistics by literal name."""
    found = {}
    for path in cpp_sources("src"):
        text = path.read_text()
        for m in SRC_LOOKUP.finditer(text):
            name = m.group(1)
            line = text.count("\n", 0, m.start()) + 1
            found.setdefault(name, []).append(
                "%s:%d" % (path.relative_to(ROOT), line)
            )
    return found


def expand_braces(token):
    m = re.search(r"\{([^}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end() :]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(head + alt.strip() + tail))
    return out


def collect_design_lookups():
    design = ROOT / "DESIGN.md"
    text = design.read_text()
    m = re.search(r"^## 4c\..*?(?=^## )", text, re.S | re.M)
    if not m:
        return {}
    found = {}
    start = text.count("\n", 0, m.start())
    for offset, line in enumerate(m.group(0).splitlines()):
        if not line.lstrip().startswith("|"):
            continue
        for token in re.findall(r"`([^`]+)`", line):
            if "<" in token or token.startswith("."):
                continue  # `.b<i>`-style placeholders
            for name in expand_braces(token):
                if DOTTED.match(name):
                    found.setdefault(name, []).append(
                        "DESIGN.md:%d" % (start + offset + 1)
                    )
    return found


def resolves(name, names, prefixes, suffixes):
    if name in names:
        return True
    # Sampled/histogram snapshot fan-out: registered name is a
    # dot-boundary prefix of the consumed one.
    for n in names:
        if name.startswith(n + "."):
            return True
    # base + "Suffix" registrations whose base is itself registered.
    for n in names:
        for suf in suffixes:
            if name == n + suf:
                return True
    # Dynamically-built families ("cpu.core" + i + ...).
    return any(name.startswith(p) for p in prefixes)


def main():
    names, prefixes, suffixes = collect_registrations()
    if not names:
        print("lint_stat_names: no registrations found under src/")
        return 1

    consumed = collect_code_lookups()
    for name, sites in collect_src_lookups().items():
        consumed.setdefault(name, []).extend(sites)
    for name, sites in collect_design_lookups().items():
        consumed.setdefault(name, []).extend(sites)

    unknown = []
    for name in sorted(consumed):
        if not DOTTED.match(name):
            continue
        if not resolves(name, names, prefixes, suffixes):
            unknown.append(name)

    if unknown:
        for name in unknown:
            sites = ", ".join(consumed[name][:3])
            print("unknown stat %r consumed at %s" % (name, sites))
        print(
            "lint_stat_names: %d unknown name(s); registered: %d"
            % (len(unknown), len(names))
        )
        return 1

    print(
        "lint_stat_names: %d consumed names resolve against %d "
        "registrations" % (len(consumed), len(names))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
