#!/usr/bin/env python3
"""Stat-name lint: thin wrapper over ``rcnvm_lint --stat-names-only``.

The original Python implementation of this check (every statistic a
consumer looks up must resolve against a registration — see
DESIGN.md 4c for the rationale and DESIGN.md 4j for the check's
semantics) was ported into the rcnvm-lint binary as its RL005 check,
where it shares the C++ tokenizer with the other four checks instead
of re-deriving string extraction with regexes. This wrapper keeps the
historical entry point alive for CI configs and habits: it locates
(building if necessary) the binary and delegates.

Exit status is the binary's: 0 when every consumed name resolves,
1 otherwise with one RL005 line per unknown name.
"""

import os
import pathlib
import shutil
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def find_or_build_binary() -> pathlib.Path:
    # Any configured build tree will do; prefer the conventional one.
    candidates = [ROOT / "build" / "tools" / "rcnvm_lint"]
    candidates += sorted(ROOT.glob("build*/tools/rcnvm_lint"))
    for c in candidates:
        if c.is_file() and os.access(c, os.X_OK):
            return c
    bdir = ROOT / "build"
    if shutil.which("cmake") is None:
        sys.exit("lint_stat_names: no rcnvm_lint binary and no cmake "
                 "to build one; build the tree first")
    subprocess.run(["cmake", "-B", str(bdir), "-S", str(ROOT)],
                   check=True, stdout=subprocess.DEVNULL)
    subprocess.run(["cmake", "--build", str(bdir),
                    "--target", "rcnvm_lint", "-j"], check=True)
    return bdir / "tools" / "rcnvm_lint"


def main() -> int:
    binary = find_or_build_binary()
    return subprocess.run(
        [str(binary), "--stat-names-only", "--root", str(ROOT)]
    ).returncode


if __name__ == "__main__":
    sys.exit(main())
