/**
 * rcnvm-lint — repo-specific static analysis for the RC-NVM
 * simulator (see checks.hh for the check catalogue, DESIGN.md §4j
 * for the policy).
 *
 * Repo mode (CI gate):
 *   rcnvm_lint --root <repo> [--baseline <file>]
 * scans src/, bench/, tools/, examples/ with RL001–RL004, collects
 * the RL005 stat-name corpus from src/ + bench/ + tests/ +
 * DESIGN.md, and exits 1 on any finding not in the baseline.
 *
 * File mode (fixtures, editors):
 *   rcnvm_lint [--as <virtual-path>] <file> [...]
 * runs RL001–RL004 per file; --as makes a snippet lint as-if it
 * lived at that repo-relative path (path-scoped checks).
 *
 * Baselines hold one finding key per line (RLxxx|path|salient);
 * --update-baseline writes the current findings, the run gate then
 * tracks legacy findings without letting new ones in.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "checks.hh"
#include "lexer.hh"

namespace fs = std::filesystem;
using rcnvm::lint::Diag;
using rcnvm::lint::SourceFile;
using rcnvm::lint::StatNameCheck;

namespace {

struct Options {
    std::string root;
    std::string baseline;
    std::string updateBaseline;
    bool statNamesOnly = false;
    bool listChecks = false;
    /** (virtual display path or empty, filesystem path) pairs. */
    std::vector<std::pair<std::string, std::string>> files;
};

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s --root DIR [--baseline FILE] "
        "[--update-baseline FILE] [--stat-names-only]\n"
        "       %s [--as VIRTUAL_PATH] FILE [[--as VP2] FILE2 ...]\n"
        "       %s --list-checks\n",
        argv0, argv0, argv0);
    return code;
}

bool
isCppSource(const fs::path &p)
{
    return p.extension() == ".cc" || p.extension() == ".hh";
}

/** Repo files for a subtree, sorted, fixture corpora excluded (the
 *  lint's own known-bad test snippets must not fail the repo gate). */
std::vector<fs::path>
treeFiles(const fs::path &root, const std::string &sub)
{
    std::vector<fs::path> out;
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         it != end && !ec; it.increment(ec)) {
        const fs::path &p = it->path();
        // Exclusion is relative to the scan root: a repo scan must
        // not eat the known-bad fixture corpus, but pointing --root
        // AT a fixture mini-repo (the fixture suite does) works.
        if (p.filename() == "lint_fixtures" && it->is_directory() &&
            fs::relative(p, root) != ".") {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isCppSource(p))
            out.push_back(p);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
lexAt(const fs::path &fsPath, const std::string &displayPath,
      SourceFile &out)
{
    std::string text;
    if (!rcnvm::lint::readFile(fsPath.string(), text)) {
        std::fprintf(stderr, "rcnvm-lint: cannot read %s\n",
                     fsPath.string().c_str());
        return false;
    }
    out = rcnvm::lint::lexString(text, displayPath);
    return true;
}

std::set<std::string>
loadBaseline(const std::string &path, bool &ok)
{
    std::set<std::string> keys;
    ok = true;
    std::ifstream in(path);
    if (!in) {
        ok = false;
        return keys;
    }
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        keys.insert(line.substr(first, last - first + 1));
    }
    return keys;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::string pendingAs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rcnvm-lint: %s needs a value\n", flag);
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--root") {
            opt.root = value("--root");
        } else if (arg == "--baseline") {
            opt.baseline = value("--baseline");
        } else if (arg == "--update-baseline") {
            opt.updateBaseline = value("--update-baseline");
        } else if (arg == "--stat-names-only") {
            opt.statNamesOnly = true;
        } else if (arg == "--list-checks") {
            opt.listChecks = true;
        } else if (arg == "--as") {
            pendingAs = value("--as");
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "rcnvm-lint: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0], 2);
        } else {
            opt.files.emplace_back(pendingAs, arg);
            pendingAs.clear();
        }
    }

    if (opt.listChecks) {
        std::printf(
            "RL001 determinism   iteration over unordered/"
            "pointer-keyed containers feeding order-sensitive "
            "sinks   [ordered-ok]\n"
            "RL002 strong-types  raw uint64_t tick/cycle/row/col "
            "parameters in src/{mem,sim,cpu}   [raw-ok]\n"
            "RL003 event-safety  by-reference lambda captures "
            "scheduled on the event queue   [capture-ok]\n"
            "RL004 strict-parse  strtoull/atoi/stoi-family calls "
            "outside src/util   [parse-ok]\n"
            "RL005 stat-names    consumed statistic names must "
            "resolve against src/ registrations\n");
        return 0;
    }

    if (opt.root.empty() && opt.files.empty())
        return usage(argv[0], 2);
    if (opt.statNamesOnly && opt.root.empty()) {
        std::fprintf(stderr,
                     "rcnvm-lint: --stat-names-only needs --root\n");
        return 2;
    }

    std::vector<Diag> diags;
    std::size_t filesScanned = 0;

    if (!opt.root.empty()) {
        const fs::path root = opt.root;
        StatNameCheck stats;
        for (const char *sub : {"src", "bench", "tools", "examples",
                                "tests"}) {
            for (const fs::path &p : treeFiles(root, sub)) {
                const std::string display =
                    fs::relative(p, root).generic_string();
                SourceFile f;
                if (!lexAt(p, display, f))
                    return 2;
                ++filesScanned;
                const bool isSrc =
                    std::strcmp(sub, "src") == 0;
                const bool isConsumer =
                    std::strcmp(sub, "bench") == 0 ||
                    std::strcmp(sub, "tests") == 0;
                // tests/ are scanned for stat lookups only; the
                // behavioural suite may legitimately iterate maps
                // or death-test malformed parses.
                if (!opt.statNamesOnly &&
                    std::strcmp(sub, "tests") != 0)
                    checkFile(f, diags);
                if (isSrc)
                    stats.addSrcFile(f);
                else if (isConsumer)
                    stats.addConsumerFile(f);
            }
        }
        std::string design;
        if (rcnvm::lint::readFile((root / "DESIGN.md").string(),
                                  design))
            stats.addDesignDoc(design);
        if (!stats.sawRegistrations()) {
            std::fprintf(stderr,
                         "rcnvm-lint: no stat registrations found "
                         "under %s/src — wrong --root?\n",
                         opt.root.c_str());
            return 2;
        }
        stats.check(diags);
        if (opt.statNamesOnly) {
            std::vector<Diag> only;
            for (auto &d : diags) {
                if (d.id == "RL005")
                    only.push_back(std::move(d));
            }
            diags = std::move(only);
        }
    }

    for (const auto &[as, path] : opt.files) {
        const std::string display =
            !as.empty() ? as
                        : "src/" + fs::path(path).filename().string();
        SourceFile f;
        if (!lexAt(path, display, f))
            return 2;
        ++filesScanned;
        checkFile(f, diags);
    }

    std::sort(diags.begin(), diags.end(),
              [](const Diag &a, const Diag &b) {
                  return std::tie(a.path, a.line, a.col, a.id) <
                         std::tie(b.path, b.line, b.col, b.id);
              });

    if (!opt.updateBaseline.empty()) {
        std::ofstream out(opt.updateBaseline);
        out << "# rcnvm-lint baseline: one finding key per line\n"
            << "# (check|path|salient-token — line-number free).\n"
            << "# Regenerate: rcnvm_lint --root . "
               "--update-baseline <this file>\n";
        std::set<std::string> keys;
        for (const Diag &d : diags)
            keys.insert(d.key);
        for (const std::string &k : keys)
            out << k << "\n";
        std::printf("rcnvm-lint: wrote %zu baseline key(s) to %s\n",
                    keys.size(), opt.updateBaseline.c_str());
        return 0;
    }

    std::set<std::string> baseline;
    if (!opt.baseline.empty()) {
        bool ok = false;
        baseline = loadBaseline(opt.baseline, ok);
        if (!ok) {
            std::fprintf(stderr,
                         "rcnvm-lint: cannot read baseline %s\n",
                         opt.baseline.c_str());
            return 2;
        }
    }

    std::size_t fresh = 0, suppressed = 0;
    std::set<std::string> usedKeys;
    for (const Diag &d : diags) {
        if (baseline.count(d.key)) {
            ++suppressed;
            usedKeys.insert(d.key);
            continue;
        }
        ++fresh;
        std::printf("%s:%d:%d: %s: %s\n", d.path.c_str(), d.line,
                    d.col, d.id.c_str(), d.msg.c_str());
    }

    std::size_t stale = 0;
    for (const std::string &k : baseline) {
        if (!usedKeys.count(k))
            ++stale;
    }
    if (stale > 0) {
        std::printf("rcnvm-lint: note: %zu baseline entr%s no "
                    "longer match%s — prune the baseline\n",
                    stale, stale == 1 ? "y" : "ies",
                    stale == 1 ? "es" : "");
    }

    if (fresh > 0) {
        std::printf("rcnvm-lint: %zu finding(s) (%zu baselined) "
                    "across %zu file(s)\n",
                    fresh, suppressed, filesScanned);
        return 1;
    }
    std::printf("rcnvm-lint: clean (%zu file(s), %zu baselined "
                "finding(s))\n",
                filesScanned, suppressed);
    return 0;
}
