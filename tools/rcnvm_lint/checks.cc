#include "checks.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace rcnvm::lint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool
isI(const Token &t, const char *text)
{
    return t.kind == Tok::Ident && t.text == text;
}

bool
isP(const Token &t, const char *text)
{
    return t.kind == Tok::Punct && t.text == text;
}

bool
startsWith(const std::string &s, const std::string &pre)
{
    return s.compare(0, pre.size(), pre) == 0;
}

bool
endsWith(const std::string &s, const std::string &suf)
{
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

std::string
lower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
oneOf(const std::string &s, std::initializer_list<const char *> set)
{
    return std::any_of(set.begin(), set.end(), [&](const char *w) {
        return s == w;
    });
}

/** Matching close for the paren/brace/bracket at @p i; npos when the
 *  file ends first (truncated or confused input — checks bail). */
std::size_t
matchDelim(const std::vector<Token> &t, std::size_t i,
           const char *open, const char *close)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (isP(t[j], open))
            ++depth;
        else if (isP(t[j], close) && --depth == 0)
            return j;
    }
    return npos;
}

/** Matching '>' for the '<' at @p i. Conservative: gives up at any
 *  token that cannot appear in a template-argument list, so a stray
 *  less-than comparison never swallows the rest of the file. */
std::size_t
matchAngle(const std::vector<Token> &t, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < t.size(); ++j) {
        if (isP(t[j], "<"))
            ++depth;
        else if (isP(t[j], ">") && --depth == 0)
            return j;
        else if (isP(t[j], ";") || isP(t[j], "{") || isP(t[j], "}"))
            return npos;
    }
    return npos;
}

// ---------------------------------------------------------------
// RL001 — deterministic iteration
// ---------------------------------------------------------------

bool
isUnorderedType(const std::string &s)
{
    return oneOf(s, {"unordered_map", "unordered_set",
                     "unordered_multimap", "unordered_multiset"});
}

/** Calls inside an iteration body that make the visit order
 *  observable: stat registration, event scheduling, and ordered
 *  container insertion. */
bool
isOrderSink(const std::string &s)
{
    return oneOf(
        s, {"schedule", "scheduleAfter", "inject", "post", "push",
            "push_back", "push_front", "emplace", "emplace_back",
            "emplace_front", "insert", "add", "set", "addCounter",
            "addCounterFn", "addValue", "addSampled", "addHistogram",
            "addGauge", "addFormula"});
}

struct IterTargets {
    std::set<std::string> unorderedVars;  //!< declared names
    std::set<std::string> unorderedTypes; //!< aliases of unordered
    std::set<std::string> pointerVars;    //!< ptr-keyed map/set vars
};

/** Record the declarator name that follows a container type ending
 *  at @p after (first token past the template argument list). */
void
recordDeclaredName(const std::vector<Token> &t, std::size_t after,
                   std::set<std::string> &into)
{
    std::size_t j = after;
    while (j < t.size() &&
           (isP(t[j], "&") || isP(t[j], "*") || isI(t[j], "const")))
        ++j;
    if (j < t.size() && t[j].kind == Tok::Ident)
        into.insert(t[j].text);
}

IterTargets
collectIterTargets(const SourceFile &f)
{
    const auto &t = f.toks;
    IterTargets out;

    // Pass 1: `using X = ...unordered...;` / `typedef ... X;`
    // aliases, so later `X m;` declarations resolve.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (isI(t[i], "using") && i + 2 < t.size() &&
            t[i + 1].kind == Tok::Ident && isP(t[i + 2], "=")) {
            for (std::size_t j = i + 3;
                 j < t.size() && !isP(t[j], ";"); ++j) {
                if (t[j].kind == Tok::Ident &&
                    isUnorderedType(t[j].text)) {
                    out.unorderedTypes.insert(t[i + 1].text);
                    break;
                }
            }
        }
        if (isI(t[i], "typedef")) {
            bool unordered = false;
            std::size_t j = i + 1;
            for (; j < t.size() && !isP(t[j], ";"); ++j) {
                if (t[j].kind == Tok::Ident &&
                    isUnorderedType(t[j].text))
                    unordered = true;
            }
            if (unordered && j > i + 1 &&
                t[j - 1].kind == Tok::Ident)
                out.unorderedTypes.insert(t[j - 1].text);
        }
    }

    // Pass 2: declared entities of unordered (or aliased) type, and
    // of std::map/std::set keyed by a pointer type — their iteration
    // order is the allocator's, different on every run.
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != Tok::Ident)
            continue;
        const bool direct = isUnorderedType(t[i].text);
        const bool alias = out.unorderedTypes.count(t[i].text) > 0;
        if (direct || alias) {
            std::size_t after = i + 1;
            if (after < t.size() && isP(t[after], "<")) {
                std::size_t close = matchAngle(t, after);
                if (close == npos)
                    continue;
                after = close + 1;
            }
            recordDeclaredName(t, after, out.unorderedVars);
            continue;
        }
        if (oneOf(t[i].text, {"map", "set", "multimap", "multiset"}) &&
            i >= 2 && isP(t[i - 1], "::") && isI(t[i - 2], "std") &&
            i + 1 < t.size() && isP(t[i + 1], "<")) {
            std::size_t close = matchAngle(t, i + 1);
            if (close == npos)
                continue;
            // First template argument: up to the depth-1 comma.
            std::size_t argEnd = close;
            int depth = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (isP(t[j], "<") || isP(t[j], "(") ||
                    isP(t[j], "["))
                    ++depth;
                else if (isP(t[j], ">") || isP(t[j], ")") ||
                         isP(t[j], "]"))
                    --depth;
                else if (isP(t[j], ",") && depth == 1) {
                    argEnd = j;
                    break;
                }
            }
            if (argEnd > i + 2 && isP(t[argEnd - 1], "*"))
                recordDeclaredName(t, close + 1, out.pointerVars);
        }
    }
    return out;
}

void
checkDeterministicIteration(const SourceFile &f,
                            const IterTargets &targets,
                            std::vector<Diag> &out)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!isI(t[i], "for") || !isP(t[i + 1], "("))
            continue;
        const std::size_t open = i + 1;
        const std::size_t close = matchDelim(t, open, "(", ")");
        if (close == npos)
            continue;

        // Range-for: the ':' at paren depth 1 splits decl from the
        // sequence. A classic for has none; for those, iterator
        // loops over an unordered name (m.begin()) still count.
        std::size_t colon = npos;
        int depth = 0;
        for (std::size_t j = open; j < close; ++j) {
            if (isP(t[j], "(") || isP(t[j], "[") || isP(t[j], "{"))
                ++depth;
            else if (isP(t[j], ")") || isP(t[j], "]") ||
                     isP(t[j], "}"))
                --depth;
            else if (isP(t[j], ":") && depth == 1) {
                colon = j;
                break;
            }
        }

        std::string culprit;
        const std::size_t scanFrom =
            colon == npos ? open + 1 : colon + 1;
        bool iterStyle = colon == npos;
        bool sawBegin = false;
        for (std::size_t j = scanFrom; j < close; ++j) {
            if (t[j].kind != Tok::Ident)
                continue;
            if (iterStyle &&
                (t[j].text == "begin" || t[j].text == "cbegin"))
                sawBegin = true;
            if (targets.unorderedVars.count(t[j].text) ||
                targets.unorderedTypes.count(t[j].text) ||
                isUnorderedType(t[j].text) ||
                targets.pointerVars.count(t[j].text)) {
                if (culprit.empty())
                    culprit = t[j].text;
            }
        }
        if (culprit.empty() || (iterStyle && !sawBegin))
            continue;

        // Body: braced block or single statement.
        std::size_t bodyBegin = close + 1;
        std::size_t bodyEnd;
        if (bodyBegin < t.size() && isP(t[bodyBegin], "{")) {
            bodyEnd = matchDelim(t, bodyBegin, "{", "}");
            if (bodyEnd == npos)
                continue;
        } else {
            int d = 0;
            bodyEnd = npos;
            for (std::size_t j = bodyBegin; j < t.size(); ++j) {
                if (isP(t[j], "(") || isP(t[j], "{"))
                    ++d;
                else if (isP(t[j], ")") || isP(t[j], "}"))
                    --d;
                else if (isP(t[j], ";") && d == 0) {
                    bodyEnd = j;
                    break;
                }
            }
            if (bodyEnd == npos)
                continue;
        }

        std::string sink;
        for (std::size_t j = bodyBegin; j < bodyEnd; ++j) {
            if (t[j].kind == Tok::Ident && isOrderSink(t[j].text) &&
                j + 1 < t.size() && isP(t[j + 1], "(")) {
                sink = t[j].text;
                break;
            }
        }
        if (sink.empty())
            continue;
        if (f.suppressed(t[i].line, "ordered-ok"))
            continue;
        const bool ptr = targets.pointerVars.count(culprit) > 0;
        out.push_back(Diag{
            f.path, t[i].line, t[i].col, "RL001",
            std::string(ptr ? "iteration over pointer-keyed "
                              "container '"
                            : "iteration over unordered "
                              "container '") +
                culprit + "' reaches order-sensitive '" + sink +
                "(...)'; visit order is nondeterministic — sort "
                "the keys first, use an ordered container, or "
                "annotate `// rcnvm-lint: ordered-ok` if the body "
                "is order-independent",
            "RL001|" + f.path + "|" + culprit});
    }
}

// ---------------------------------------------------------------
// RL002 — strong-type boundaries
// ---------------------------------------------------------------

bool
rawClockOrientName(const std::string &name)
{
    const std::string l = lower(name);
    if (oneOf(l, {"tick", "ticks", "cycle", "cycles", "row", "col",
                  "column", "row_addr", "col_addr", "rowaddr",
                  "coladdr", "row_address", "col_address"}))
        return true;
    return endsWith(name, "Tick") || endsWith(name, "Ticks") ||
           endsWith(name, "Cycle") || endsWith(name, "Cycles") ||
           endsWith(l, "_tick") || endsWith(l, "_ticks") ||
           endsWith(l, "_cycle") || endsWith(l, "_cycles");
}

/** The raw integer types the typed vocabulary replaced. Returns the
 *  index one past the type tokens, or npos when @p i is not one. */
std::size_t
matchRawWideInt(const std::vector<Token> &t, std::size_t i)
{
    if (isI(t[i], "uint64_t"))
        return i + 1;
    if (isI(t[i], "unsigned") && i + 1 < t.size() &&
        isI(t[i + 1], "long")) {
        return i + 2 < t.size() && isI(t[i + 2], "long") ? i + 3
                                                         : i + 2;
    }
    return npos;
}

bool
inTypedBoundaryDirs(const std::string &path)
{
    return startsWith(path, "src/mem/") ||
           startsWith(path, "src/sim/") ||
           startsWith(path, "src/cpu/");
}

void
checkRawTypeParams(const SourceFile &f, std::vector<Diag> &out)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i < t.size(); ++i) {
        std::size_t typeEnd = matchRawWideInt(t, i);
        if (typeEnd == npos)
            continue;

        // Only parameter positions: the token before the type (and
        // before any const/std:: qualification) is '(' or ','.
        std::size_t before = i;
        if (before >= 2 && isP(t[before - 1], "::") &&
            isI(t[before - 2], "std"))
            before -= 2;
        if (before >= 1 && isI(t[before - 1], "const"))
            --before;
        if (before == 0 ||
            !(isP(t[before - 1], "(") || isP(t[before - 1], ",")))
            continue;

        std::size_t j = typeEnd;
        while (j < t.size() && (isP(t[j], "&") || isP(t[j], "*")))
            ++j;
        if (j >= t.size() || t[j].kind != Tok::Ident ||
            !rawClockOrientName(t[j].text))
            continue;
        if (j + 1 >= t.size() ||
            !(isP(t[j + 1], ",") || isP(t[j + 1], ")") ||
              isP(t[j + 1], "=")))
            continue;

        // Confirm a function declarator, not a call: the enclosing
        // '(' is preceded by a name (or a lambda's ']'), and its
        // matching ')' is followed by declarator syntax.
        std::size_t openAt = npos;
        int depth = 0;
        for (std::size_t k = before; k-- > 0;) {
            if (isP(t[k], ")"))
                ++depth;
            else if (isP(t[k], "(")) {
                if (depth == 0) {
                    openAt = k;
                    break;
                }
                --depth;
            }
        }
        if (openAt == npos || openAt == 0)
            continue;
        const Token &callee = t[openAt - 1];
        if (!(callee.kind == Tok::Ident || isP(callee, "]")))
            continue;
        if (callee.kind == Tok::Ident &&
            oneOf(callee.text, {"if", "for", "while", "switch",
                                "return", "sizeof", "catch"}))
            continue;
        std::size_t closeAt = matchDelim(t, openAt, "(", ")");
        if (closeAt == npos || closeAt + 1 >= t.size())
            continue;
        const Token &after = t[closeAt + 1];
        if (!(isP(after, "{") || isP(after, ";") ||
              isP(after, "-") || isP(after, ":") ||
              isI(after, "const") || isI(after, "noexcept") ||
              isI(after, "override") || isI(after, "final")))
            continue;

        if (f.suppressed(t[j].line, "raw-ok"))
            continue;
        out.push_back(Diag{
            f.path, t[j].line, t[j].col, "RL002",
            "raw wide-integer parameter '" + t[j].text +
                "' crosses a clock/orientation boundary; use the "
                "typed vocabulary (Tick, CpuCycles, MemCycles, "
                "RowAddr, ColAddr) or annotate "
                "`// rcnvm-lint: raw-ok` with a reason",
            "RL002|" + f.path + "|" + t[j].text});
    }
}

// ---------------------------------------------------------------
// RL003 — event-callback capture safety
// ---------------------------------------------------------------

bool
isScheduleEntry(const std::string &s)
{
    return oneOf(s, {"schedule", "scheduleAfter", "inject", "post"});
}

void
checkScheduledCaptures(const SourceFile &f, std::vector<Diag> &out)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || !isScheduleEntry(t[i].text) ||
            !isP(t[i + 1], "("))
            continue;
        const std::size_t open = i + 1;
        const std::size_t close = matchDelim(t, open, "(", ")");
        if (close == npos)
            continue;

        for (std::size_t b = open + 1; b < close; ++b) {
            if (!isP(t[b], "[") ||
                !(isP(t[b - 1], "(") || isP(t[b - 1], ",")))
                continue;
            if (b + 1 < close && isP(t[b + 1], "["))
                continue; // [[attribute]]
            const std::size_t e = matchDelim(t, b, "[", "]");
            if (e == npos || e > close)
                continue;

            // Split the capture list on depth-0 commas and flag any
            // by-reference entry ('&' default or '&name' forms).
            std::size_t entry = b + 1;
            int depth = 0;
            for (std::size_t j = b + 1; j <= e; ++j) {
                const bool end = j == e;
                if (!end && (isP(t[j], "(") || isP(t[j], "[") ||
                             isP(t[j], "{") || isP(t[j], "<")))
                    ++depth;
                else if (!end &&
                         (isP(t[j], ")") || isP(t[j], "]") ||
                          isP(t[j], "}") || isP(t[j], ">")))
                    --depth;
                if (!end && !(isP(t[j], ",") && depth == 0))
                    continue;
                if (entry < j && isP(t[entry], "&")) {
                    std::string what =
                        entry + 1 < j &&
                                t[entry + 1].kind == Tok::Ident
                            ? t[entry + 1].text
                            : std::string("&");
                    if (!f.suppressed(t[b].line, "capture-ok")) {
                        out.push_back(Diag{
                            f.path, t[b].line, t[b].col, "RL003",
                            "lambda scheduled via '" + t[i].text +
                                "' captures " +
                                (what == "&"
                                     ? std::string(
                                           "by reference by "
                                           "default")
                                     : "'" + what +
                                           "' by reference") +
                                "; the event outlives this scope "
                                "on the slab queue — capture by "
                                "value/move or annotate "
                                "`// rcnvm-lint: capture-ok` with "
                                "a lifetime argument",
                            "RL003|" + f.path + "|" + what});
                    }
                }
                entry = j + 1;
            }
            b = e; // continue past this lambda's capture list
        }
    }
}

// ---------------------------------------------------------------
// RL004 — strict parsing
// ---------------------------------------------------------------

bool
isRawParseFn(const std::string &s)
{
    return oneOf(s, {"strtoull", "strtoul", "strtol", "strtoll",
                     "strtoumax", "strtoimax", "atoi", "atol",
                     "atoll", "stoi", "stol", "stoll", "stoul",
                     "stoull", "sscanf"});
}

void
checkRawParse(const SourceFile &f, std::vector<Diag> &out)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || !isRawParseFn(t[i].text) ||
            !isP(t[i + 1], "("))
            continue;
        if (f.suppressed(t[i].line, "parse-ok"))
            continue;
        out.push_back(Diag{
            f.path, t[i].line, t[i].col, "RL004",
            "direct '" + t[i].text +
                "(...)' outside src/util silently accepts "
                "malformed input; route through util::parseUint64 "
                "/ util::envUint64 (or annotate "
                "`// rcnvm-lint: parse-ok`)",
            "RL004|" + f.path + "|" + t[i].text});
    }
}

// ---------------------------------------------------------------
// RL005 — stat-name hygiene helpers
// ---------------------------------------------------------------

bool
isRegisterFn(const std::string &s)
{
    return oneOf(s, {"set", "add", "addCounter", "addCounterFn",
                     "addValue", "addSampled", "addHistogram",
                     "addGauge", "addFormula"});
}

bool
isDottedName(const std::string &s)
{
    bool dot = false, prevDot = true; // leading dot illegal
    for (char c : s) {
        if (c == '.') {
            if (prevDot)
                return false;
            dot = true;
            prevDot = true;
        } else if (std::isalnum(static_cast<unsigned char>(c)) ||
                   c == '_') {
            prevDot = false;
        } else {
            return false;
        }
    }
    return dot && !prevDot;
}

void
expandBraces(const std::string &token, std::vector<std::string> &out)
{
    const std::size_t lb = token.find('{');
    if (lb == std::string::npos) {
        out.push_back(token);
        return;
    }
    const std::size_t rb = token.find('}', lb);
    if (rb == std::string::npos) {
        out.push_back(token);
        return;
    }
    const std::string head = token.substr(0, lb);
    const std::string tail = token.substr(rb + 1);
    std::string alts = token.substr(lb + 1, rb - lb - 1);
    std::size_t pos = 0;
    while (true) {
        std::size_t comma = alts.find(',', pos);
        std::string alt = alts.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const std::size_t a = alt.find_first_not_of(" \t");
        const std::size_t b = alt.find_last_not_of(" \t");
        alt = a == std::string::npos
                  ? std::string()
                  : alt.substr(a, b - a + 1);
        expandBraces(head + alt + tail, out);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

/** Literal registrations in one file (also used for the local-name
 *  exemption in bench/tests: a registry-mechanics test may consume
 *  names it registered itself). */
void
scanRegistrations(const SourceFile &f, std::set<std::string> *names,
                  std::set<std::string> *prefixes,
                  std::set<std::string> *suffixes)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || !isRegisterFn(t[i].text) ||
            !isP(t[i + 1], "("))
            continue;
        const Token &arg = t[i + 2];
        if (arg.kind == Tok::Str && i + 3 < t.size()) {
            if (isP(t[i + 3], ",") || isP(t[i + 3], ")")) {
                if (names)
                    names->insert(arg.text);
            } else if (isP(t[i + 3], "+")) {
                if (prefixes)
                    prefixes->insert(arg.text);
            }
        } else if (arg.kind == Tok::Ident && i + 5 < t.size() &&
                   isP(t[i + 3], "+") &&
                   t[i + 4].kind == Tok::Str &&
                   (isP(t[i + 5], ",") || isP(t[i + 5], ")"))) {
            if (suffixes)
                suffixes->insert(t[i + 4].text);
        }
    }
}

void
scanLookups(const SourceFile &f, bool widerSrcSet,
            const std::set<std::string> &localNames,
            std::map<std::string,
                     std::vector<std::pair<std::string, int>>> &out)
{
    const auto &t = f.toks;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
        if (t[i].kind != Tok::Ident || !isP(t[i + 1], "(") ||
            t[i + 2].kind != Tok::Str ||
            !(isP(t[i + 3], ",") || isP(t[i + 3], ")")))
            continue;
        const std::string &fn = t[i].text;
        const bool hit =
            oneOf(fn, {"get", "at", "counter"}) ||
            (widerSrcSet &&
             oneOf(fn, {"sampled", "histogram", "value"}));
        if (!hit)
            continue;
        const std::string &name = t[i + 2].text;
        bool local = localNames.count(name) > 0;
        for (auto it = localNames.begin();
             !local && it != localNames.end(); ++it)
            local = startsWith(name, *it + ".");
        if (local)
            continue;
        out[name].emplace_back(f.path, t[i + 2].line);
    }
}

} // namespace

void
checkFile(const SourceFile &f, std::vector<Diag> &out)
{
    const IterTargets targets = collectIterTargets(f);
    checkDeterministicIteration(f, targets, out);
    if (inTypedBoundaryDirs(f.path))
        checkRawTypeParams(f, out);
    checkScheduledCaptures(f, out);
    if (!startsWith(f.path, "src/util/"))
        checkRawParse(f, out);
}

void
StatNameCheck::addSrcFile(const SourceFile &f)
{
    scanRegistrations(f, &names_, &prefixes_, &suffixes_);
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        found;
    scanLookups(f, /*widerSrcSet=*/true, {}, found);
    for (auto &[name, sites] : found) {
        for (auto &[path, line] : sites)
            consumed_[name].push_back(Site{path, line});
    }
}

void
StatNameCheck::addConsumerFile(const SourceFile &f)
{
    std::set<std::string> local;
    scanRegistrations(f, &local, nullptr, nullptr);
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        found;
    scanLookups(f, /*widerSrcSet=*/false, local, found);
    for (auto &[name, sites] : found) {
        for (auto &[path, line] : sites)
            consumed_[name].push_back(Site{path, line});
    }
}

void
StatNameCheck::addDesignDoc(const std::string &text)
{
    // The §4c statistics table: every backticked dotted name in a
    // table row must resolve (brace alternation expanded, <i>
    // placeholders skipped), or the documentation has rotted.
    std::size_t start = text.find("\n## 4c.");
    if (start == std::string::npos)
        return;
    ++start;
    std::size_t end = text.find("\n## ", start + 1);
    if (end == std::string::npos)
        end = text.size();

    int line = 1 + static_cast<int>(
                       std::count(text.begin(),
                                  text.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          start),
                                  '\n'));
    std::size_t pos = start;
    while (pos < end) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos || eol > end)
            eol = end;
        const std::string row = text.substr(pos, eol - pos);
        const std::size_t first = row.find_first_not_of(" \t");
        if (first != std::string::npos && row[first] == '|') {
            std::size_t tick = row.find('`');
            while (tick != std::string::npos) {
                std::size_t closeTick = row.find('`', tick + 1);
                if (closeTick == std::string::npos)
                    break;
                const std::string token =
                    row.substr(tick + 1, closeTick - tick - 1);
                if (token.find('<') == std::string::npos &&
                    !token.empty() && token[0] != '.') {
                    std::vector<std::string> expanded;
                    expandBraces(token, expanded);
                    for (const auto &name : expanded) {
                        if (isDottedName(name))
                            consumed_[name].push_back(
                                Site{"DESIGN.md", line});
                    }
                }
                tick = row.find('`', closeTick + 1);
            }
        }
        pos = eol + 1;
        ++line;
    }
}

void
StatNameCheck::check(std::vector<Diag> &out) const
{
    for (const auto &[name, sites] : consumed_) {
        if (!isDottedName(name))
            continue;
        bool ok = names_.count(name) > 0;
        for (auto it = names_.begin(); !ok && it != names_.end();
             ++it) {
            // Sampled/histogram snapshot fan-out sub-entries.
            if (startsWith(name, *it + "."))
                ok = true;
            // base + "Suffix" family registrations.
            for (auto st = suffixes_.begin();
                 !ok && st != suffixes_.end(); ++st)
                ok = name == *it + *st;
        }
        for (auto it = prefixes_.begin();
             !ok && it != prefixes_.end(); ++it)
            ok = startsWith(name, *it);
        if (ok)
            continue;
        const Site &site = sites.front();
        std::string extra =
            sites.size() > 1
                ? " (+" + std::to_string(sites.size() - 1) +
                      " more site" +
                      (sites.size() > 2 ? "s)" : ")")
                : std::string();
        out.push_back(Diag{
            site.path, site.line, 1, "RL005",
            "unknown stat '" + name +
                "' is consumed but never registered under src/" +
                extra,
            "RL005|stat|" + name});
    }
}

} // namespace rcnvm::lint
