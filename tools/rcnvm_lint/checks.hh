/**
 * rcnvm-lint checks.
 *
 * Per-file checks (checkFile):
 *   RL001 determinism     — iteration over unordered containers (or
 *                           pointer-keyed ordered ones) whose loop
 *                           body reaches an order-sensitive sink:
 *                           stat registration, event scheduling, or
 *                           container insertion. Suppress with
 *                           `// rcnvm-lint: ordered-ok`.
 *   RL002 strong types    — raw uint64_t parameters in src/mem,
 *                           src/sim, src/cpu whose names say they
 *                           carry ticks/cycles/row/col — the typed
 *                           vocabulary (Tick, CpuCycles, MemCycles,
 *                           RowAddr, ColAddr) must not be opted out
 *                           of. Suppress with `rcnvm-lint: raw-ok`.
 *   RL003 event safety    — lambdas passed to schedule/scheduleAfter/
 *                           inject/post that capture locals by
 *                           reference; the slab event queue outlives
 *                           any enclosing scope. Suppress with
 *                           `rcnvm-lint: capture-ok`.
 *   RL004 strict parsing  — direct strtoull/atoi/stoi-family calls
 *                           outside src/util (util::parseUint64 is
 *                           the one strict parser). Suppress with
 *                           `rcnvm-lint: parse-ok`.
 *
 * Cross-file check (StatNameCheck):
 *   RL005 stat hygiene    — every statistic name consumed by bench/,
 *                           tests/, src/ formula bodies, or the
 *                           DESIGN.md §4c table must resolve against
 *                           a registration in src/ (the former
 *                           tools/lint_stat_names.py, one tool now
 *                           owning all repo lints).
 */
#ifndef RCNVM_TOOLS_LINT_CHECKS_HH_
#define RCNVM_TOOLS_LINT_CHECKS_HH_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace rcnvm::lint {

struct Diag {
    std::string path;
    int line = 0;
    int col = 0;
    std::string id;  //!< "RL001".."RL005"
    std::string msg;
    /** Baseline key: id|path|salient-token. Line-number free so a
     *  baselined legacy finding survives unrelated edits above it. */
    std::string key;
};

/** Run RL001–RL004 over one lexed file. */
void checkFile(const SourceFile &f, std::vector<Diag> &out);

/** RL005 corpus + verdicts. Feed every relevant file, then have
 *  check() resolve consumers against registrations. */
class StatNameCheck
{
  public:
    /** Registration + formula-lookup side: files under src/. */
    void addSrcFile(const SourceFile &f);
    /** Consumer side: files under bench/ and tests/. */
    void addConsumerFile(const SourceFile &f);
    /** The DESIGN.md §4c statistics table. */
    void addDesignDoc(const std::string &text);

    void check(std::vector<Diag> &out) const;

    bool sawRegistrations() const { return !names_.empty(); }

  private:
    struct Site {
        std::string path;
        int line = 0;
    };

    std::set<std::string> names_;
    std::set<std::string> prefixes_;
    std::set<std::string> suffixes_;
    std::map<std::string, std::vector<Site>> consumed_;
};

} // namespace rcnvm::lint

#endif // RCNVM_TOOLS_LINT_CHECKS_HH_
