#include "lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace rcnvm::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
tagChar(char c)
{
    return std::islower(static_cast<unsigned char>(c)) ||
           std::isdigit(static_cast<unsigned char>(c)) || c == '-';
}

/** Raw-string prefixes: the identifier token directly adjacent to a
 *  double quote that turns it into R"delim(...)delim". */
bool
rawStringPrefix(const std::string &s)
{
    return s == "R" || s == "u8R" || s == "uR" || s == "UR" ||
           s == "LR";
}

class Lexer
{
  public:
    Lexer(const std::string &text, const std::string &path)
        : text_(text)
    {
        out_.path = path;
    }

    SourceFile run();

  private:
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead]
                                           : '\0';
    }

    char get()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
            atLineStart_ = true;
        } else {
            ++col_;
            if (!std::isspace(static_cast<unsigned char>(c)))
                atLineStart_ = false;
        }
        return c;
    }

    bool eof() const { return pos_ >= text_.size(); }

    void push(Tok kind, std::string text, int line, int col)
    {
        out_.toks.push_back(
            Token{kind, std::move(text), line, col});
    }

    void lexComment(bool block);
    void lexString(char quote);
    void lexRawString();
    void skipPreprocessor();
    void minePragmas(const std::string &comment, int line);

    const std::string &text_;
    SourceFile out_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    bool atLineStart_ = true;
};

void
Lexer::minePragmas(const std::string &comment, int line)
{
    const std::string marker = "rcnvm-lint:";
    std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::istringstream rest(comment.substr(at + marker.size()));
    std::string word;
    auto &tags = out_.pragmas[line];
    while (rest >> word) {
        bool ok = !word.empty();
        for (char c : word)
            ok = ok && tagChar(c);
        if (!ok)
            break; // prose after the tags ("(safe: ...)")
        tags.push_back(word);
    }
}

void
Lexer::lexComment(bool block)
{
    const int start = line_;
    std::string body;
    if (block) {
        while (!eof()) {
            if (peek() == '*' && peek(1) == '/') {
                get();
                get();
                break;
            }
            body.push_back(get());
        }
    } else {
        while (!eof() && peek() != '\n')
            body.push_back(get());
    }
    minePragmas(body, start);
}

void
Lexer::lexString(char quote)
{
    const int l = line_, c = col_ - 1;
    std::string body;
    while (!eof()) {
        char ch = get();
        if (ch == '\\' && !eof()) {
            body.push_back(ch);
            body.push_back(get());
            continue;
        }
        if (ch == quote)
            break;
        if (ch == '\n')
            break; // unterminated; recover at the newline
        body.push_back(ch);
    }
    push(quote == '"' ? Tok::Str : Tok::Chr, std::move(body), l, c);
}

void
Lexer::lexRawString()
{
    // At entry the opening '"' of R"delim( has been consumed.
    const int l = line_, c = col_;
    std::string delim;
    while (!eof() && peek() != '(')
        delim.push_back(get());
    if (!eof())
        get(); // '('
    const std::string close = ")" + delim + "\"";
    std::string body;
    while (!eof()) {
        if (text_.compare(pos_, close.size(), close) == 0) {
            for (std::size_t i = 0; i < close.size(); ++i)
                get();
            break;
        }
        body.push_back(get());
    }
    push(Tok::Str, std::move(body), l, c);
}

void
Lexer::skipPreprocessor()
{
    // Consume to end of line, honouring backslash continuations.
    while (!eof()) {
        char c = get();
        if (c == '\\' && peek() == '\n') {
            get();
            continue;
        }
        if (c == '\n')
            return;
    }
}

SourceFile
Lexer::run()
{
    while (!eof()) {
        char c = peek();
        if (c == '#' && atLineStart_) {
            skipPreprocessor();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            get();
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            get();
            get();
            lexComment(false);
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            get();
            get();
            lexComment(true);
            continue;
        }
        const int l = line_, co = col_;
        if (c == '"') {
            get();
            lexString('"');
            continue;
        }
        if (c == '\'') {
            get();
            lexString('\'');
            continue;
        }
        if (identStart(c)) {
            std::string word;
            while (!eof() && identChar(peek()))
                word.push_back(get());
            if (rawStringPrefix(word) && peek() == '"') {
                get();
                lexRawString();
                continue;
            }
            push(Tok::Ident, std::move(word), l, co);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num;
            while (!eof() &&
                   (identChar(peek()) || peek() == '.' ||
                    ((peek() == '+' || peek() == '-') && !num.empty() &&
                     (num.back() == 'e' || num.back() == 'E' ||
                      num.back() == 'p' || num.back() == 'P')))) {
                num.push_back(get());
            }
            push(Tok::Number, std::move(num), l, co);
            continue;
        }
        if (c == ':' && peek(1) == ':') {
            get();
            get();
            push(Tok::Punct, "::", l, co);
            continue;
        }
        get();
        push(Tok::Punct, std::string(1, c), l, co);
    }
    return std::move(out_);
}

} // namespace

bool
SourceFile::suppressed(int line, const std::string &tag) const
{
    for (int l : {line, line - 1}) {
        auto it = pragmas.find(l);
        if (it == pragmas.end())
            continue;
        for (const auto &t : it->second) {
            if (t == tag)
                return true;
        }
    }
    return false;
}

SourceFile
lexString(const std::string &text, const std::string &display_path)
{
    return Lexer(text, display_path).run();
}

bool
readFile(const std::string &fs_path, std::string &out)
{
    std::ifstream in(fs_path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace rcnvm::lint
