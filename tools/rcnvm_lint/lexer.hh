/**
 * rcnvm-lint: self-contained C++ tokenizer.
 *
 * The lint checks (checks.hh) are written against this token stream
 * plus a small amount of structural recovery (balanced parens,
 * braces, template angles) rather than a full AST. The container and
 * CI base images guarantee only g++ — no clang development headers —
 * so the tool carries its own frontend; the checks consume a narrow
 * "facts" surface (identifier/punct/string tokens with positions,
 * suppression pragmas per line) that a clang libTooling frontend can
 * populate instead wherever libclang-dev exists, without touching
 * the check logic.
 *
 * The lexer understands exactly what the checks need: line and block
 * comments (mined for `rcnvm-lint: <tag>` suppression pragmas),
 * string/char literals including raw strings (so identifier-like
 * text inside them never matches a check), preprocessor lines
 * (skipped wholesale, including continuations), and `::` as one
 * token (so a lone `:` inside a for-header reliably signals a
 * range-for).
 */
#ifndef RCNVM_TOOLS_LINT_LEXER_HH_
#define RCNVM_TOOLS_LINT_LEXER_HH_

#include <map>
#include <string>
#include <vector>

namespace rcnvm::lint {

enum class Tok {
    Ident,  //!< identifier or keyword
    Punct,  //!< single punctuator, or the combined "::"
    Number, //!< numeric literal (pp-number, loosely)
    Str,    //!< string literal, text is the raw body
    Chr,    //!< character literal
};

struct Token {
    Tok kind;
    std::string text;
    int line = 0; //!< 1-based
    int col = 0;  //!< 1-based
};

struct SourceFile {
    /** Path used for diagnostics and path-scoped checks. Repo mode
     *  sets it relative to the root; fixture mode sets it from
     *  --as so a snippet can be linted as-if it lived in src/mem. */
    std::string path;
    std::vector<Token> toks;
    /** line -> suppression tags from `rcnvm-lint: <tag>` comments. */
    std::map<int, std::vector<std::string>> pragmas;

    /** True when @p tag appears on @p line or the line above it. */
    bool suppressed(int line, const std::string &tag) const;
};

/** Tokenize @p text, reporting diagnostics against @p display_path. */
SourceFile lexString(const std::string &text,
                     const std::string &display_path);

/** Read @p fs_path into @p out; false (with no throw) on failure. */
bool readFile(const std::string &fs_path, std::string &out);

} // namespace rcnvm::lint

#endif // RCNVM_TOOLS_LINT_LEXER_HH_
